#pragma once
// RNS polynomial in Z_q1 x ... x Z_qk [x]/(x^n + 1).
//
// Memory layout matches SEAL: a flat uint64 array where coefficient i of
// RNS component j lives at index i + j * coeff_count — the exact layout the
// vulnerable sampler writes (`poly[i + (j * coeff_count)]`, paper Fig. 2).

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "seal/modulus.hpp"
#include "seal/ntt.hpp"

namespace reveal::seal {

class Poly {
 public:
  Poly() = default;

  /// Zero polynomial with `coeff_count` coefficients per RNS component.
  Poly(std::size_t coeff_count, std::size_t coeff_mod_count)
      : coeff_count_(coeff_count),
        coeff_mod_count_(coeff_mod_count),
        data_(coeff_count * coeff_mod_count, 0) {}

  [[nodiscard]] std::size_t coeff_count() const noexcept { return coeff_count_; }
  [[nodiscard]] std::size_t coeff_mod_count() const noexcept { return coeff_mod_count_; }

  /// Coefficient i of RNS component j.
  [[nodiscard]] std::uint64_t& at(std::size_t i, std::size_t j) noexcept {
    return data_[i + j * coeff_count_];
  }
  [[nodiscard]] std::uint64_t at(std::size_t i, std::size_t j) const noexcept {
    return data_[i + j * coeff_count_];
  }

  /// Flat view (SEAL pointer idiom) — used by the ported sampler.
  [[nodiscard]] std::uint64_t* data() noexcept { return data_.data(); }
  [[nodiscard]] const std::uint64_t* data() const noexcept { return data_.data(); }

  /// View of the j-th RNS component.
  [[nodiscard]] std::span<std::uint64_t> component(std::size_t j) noexcept {
    return {data_.data() + j * coeff_count_, coeff_count_};
  }
  [[nodiscard]] std::span<const std::uint64_t> component(std::size_t j) const noexcept {
    return {data_.data() + j * coeff_count_, coeff_count_};
  }

  void set_zero() noexcept { std::fill(data_.begin(), data_.end(), 0); }

  friend bool operator==(const Poly& a, const Poly& b) noexcept {
    return a.coeff_count_ == b.coeff_count_ && a.coeff_mod_count_ == b.coeff_mod_count_ &&
           a.data_ == b.data_;
  }

 private:
  std::size_t coeff_count_ = 0;
  std::size_t coeff_mod_count_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Componentwise polynomial operations over the RNS basis `moduli`
/// (moduli.size() must equal coeff_mod_count of the operands).
namespace polyops {

/// result = a + b (componentwise, per modulus).
void add(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli, Poly& result);

/// result = a - b.
void sub(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli, Poly& result);

/// result = -a.
void negate(const Poly& a, const std::vector<Modulus>& moduli, Poly& result);

/// result = a * scalar (scalar reduced per modulus).
void multiply_scalar(const Poly& a, std::uint64_t scalar, const std::vector<Modulus>& moduli,
                     Poly& result);

/// Pointwise (Hadamard) product of NTT-domain polynomials.
void dyadic_product(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli,
                    Poly& result);

/// In-place forward/inverse NTT of every RNS component. `Tables` is any
/// per-modulus transform with n(), modulus() and in-place transforms —
/// NttTables (reference) or FastNttTables (Shoup/Harvey).
template <typename Tables>
void ntt_forward(Poly& a, const std::vector<Tables>& tables) {
  if (a.coeff_mod_count() != tables.size())
    throw std::invalid_argument("polyops::ntt_forward: table count mismatch");
  for (std::size_t j = 0; j < tables.size(); ++j) {
    if (tables[j].n() != a.coeff_count())
      throw std::invalid_argument("polyops::ntt_forward: degree mismatch");
    tables[j].forward_transform(a.component(j).data());
  }
}

template <typename Tables>
void ntt_inverse(Poly& a, const std::vector<Tables>& tables) {
  if (a.coeff_mod_count() != tables.size())
    throw std::invalid_argument("polyops::ntt_inverse: table count mismatch");
  for (std::size_t j = 0; j < tables.size(); ++j) {
    if (tables[j].n() != a.coeff_count())
      throw std::invalid_argument("polyops::ntt_inverse: degree mismatch");
    tables[j].inverse_transform(a.component(j).data());
  }
}

/// Negacyclic product a * b mod (x^n + 1) via the supplied per-modulus NTT
/// tables. Inputs are in coefficient representation; so is the result.
template <typename Tables>
void multiply_ntt(const Poly& a, const Poly& b, const std::vector<Tables>& tables,
                  Poly& result) {
  if (a.coeff_mod_count() != tables.size())
    throw std::invalid_argument("polyops::multiply_ntt: table count mismatch");
  Poly fa = a;
  Poly fb = b;
  ntt_forward(fa, tables);
  ntt_forward(fb, tables);
  std::vector<Modulus> moduli;
  moduli.reserve(tables.size());
  for (const auto& t : tables) moduli.push_back(t.modulus());
  dyadic_product(fa, fb, moduli, result);
  ntt_inverse(result, tables);
}

/// Infinity norm of the centered representation (single-modulus polys only).
[[nodiscard]] std::uint64_t infinity_norm_centered(const Poly& a, const Modulus& q);

/// Galois automorphism: result(x) = a(x^g) in R_q. `galois_element` must be
/// odd and < 2n (the automorphism group of the 2n-th cyclotomic).
void apply_galois(const Poly& a, std::uint32_t galois_element,
                  const std::vector<Modulus>& moduli, Poly& result);

}  // namespace polyops

}  // namespace reveal::seal
