#include "seal/dgauss.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/distributions.hpp"

namespace reveal::seal {

CdtSampler::CdtSampler(double sigma, double max_deviation) : sigma_(sigma) {
  if (!(sigma > 0.0) || !(max_deviation > 0.0))
    throw std::invalid_argument("CdtSampler: sigma and max deviation must be positive");
  max_value_ = static_cast<int>(std::floor(max_deviation));

  // Exact pmf of the rounded clipped Gaussian over [-max, max].
  std::vector<double> pmf;
  for (int k = -max_value_; k <= max_value_; ++k) {
    support_.push_back(k);
    pmf.push_back(num::rounded_clipped_normal_pmf(k, sigma, max_deviation));
  }
  // 64-bit fixed-point cumulative thresholds; force the last to 2^64-1 so
  // every random word maps to a value.
  cdt_.resize(pmf.size());
  long double acc = 0.0L;
  for (std::size_t i = 0; i < pmf.size(); ++i) {
    acc += static_cast<long double>(pmf[i]);
    long double scaled = acc * 18446744073709551615.0L;  // * (2^64 - 1)
    if (scaled > 18446744073709551615.0L) scaled = 18446744073709551615.0L;
    cdt_[i] = static_cast<std::uint64_t>(scaled);
  }
  cdt_.back() = ~std::uint64_t{0};
}

int CdtSampler::sample(num::Xoshiro256StarStar& rng) const noexcept {
  const std::uint64_t r = rng();
  // Binary search for the first threshold >= r (access pattern depends on r,
  // hence on the sampled secret value — the CDT leak).
  std::size_t lo = 0;
  std::size_t hi = cdt_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdt_[mid] >= r) hi = mid;
    else lo = mid + 1;
  }
  return support_[lo];
}

int CdtSampler::sample_constant_time(num::Xoshiro256StarStar& rng) const noexcept {
  const std::uint64_t r = rng();
  // Branchless: index = number of thresholds strictly below r; every table
  // entry is touched exactly once regardless of r.
  std::size_t index = 0;
  for (const std::uint64_t threshold : cdt_) {
    index += static_cast<std::size_t>(threshold < r);
  }
  if (index >= support_.size()) index = support_.size() - 1;  // r == max threshold
  return support_[index];
}

}  // namespace reveal::seal
