#pragma once
// Plaintext encoders.
//
// IntegerEncoder: binary expansion of an integer into polynomial
// coefficients (SEAL's classic IntegerEncoder); homomorphic add/multiply of
// ciphertexts then act on the encoded integers as long as coefficients do
// not wrap mod t.
//
// BatchEncoder: SIMD packing of n values mod a prime t ≡ 1 (mod 2n); slots
// map through the negacyclic NTT over Z_t, so homomorphic add/multiply act
// slot-wise.

#include <cstdint>
#include <vector>

#include "seal/ciphertext.hpp"
#include "seal/encryption_params.hpp"
#include "seal/ntt.hpp"

namespace reveal::seal {

class IntegerEncoder {
 public:
  explicit IntegerEncoder(const Context& context);

  /// Encodes a non-negative integer as its binary expansion.
  [[nodiscard]] Plaintext encode(std::uint64_t value) const;
  /// Decodes by evaluating the polynomial at x = 2 over centered
  /// coefficients; throws std::overflow_error if the value exceeds int64.
  [[nodiscard]] std::int64_t decode(const Plaintext& plain) const;

 private:
  const Context& context_;
};

class BatchEncoder {
 public:
  /// Throws std::invalid_argument unless t is prime and t ≡ 1 (mod 2n).
  explicit BatchEncoder(const Context& context);

  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_; }

  /// Packs up to n values (< t) into a plaintext; short inputs are
  /// zero-padded.
  [[nodiscard]] Plaintext encode(const std::vector<std::uint64_t>& values) const;
  /// Unpacks all n slots.
  [[nodiscard]] std::vector<std::uint64_t> decode(const Plaintext& plain) const;

 private:
  const Context& context_;
  std::size_t slots_;
  NttTables tables_;  // NTT over Z_t
};

}  // namespace reveal::seal
