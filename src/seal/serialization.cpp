#include "seal/serialization.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace reveal::seal {

namespace {

constexpr std::uint32_t kPolyTag = 0x59'4C'4F'50;        // "POLY"
constexpr std::uint32_t kPlainTag = 0x4E'4C'50'42;       // "BPLN"
constexpr std::uint32_t kCiphertextTag = 0x54'58'43'42;  // "BCXT"
constexpr std::uint32_t kPublicKeyTag = 0x4B'42'55'50;   // "PUBK"
constexpr std::uint32_t kSecretKeyTag = 0x4B'43'45'53;   // "SECK"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_raw(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_raw(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("serialization: unexpected end of stream");
  return value;
}

void write_header(std::ostream& out, std::uint32_t tag) {
  write_raw(out, tag);
  write_raw(out, kVersion);
}

void expect_header(std::istream& in, std::uint32_t tag, const char* what) {
  const auto got_tag = read_raw<std::uint32_t>(in);
  const auto got_version = read_raw<std::uint32_t>(in);
  if (got_tag != tag)
    throw std::runtime_error(std::string("serialization: bad magic for ") + what);
  if (got_version != kVersion)
    throw std::runtime_error(std::string("serialization: unsupported version for ") + what);
}

void write_u64_vector(std::ostream& out, const std::uint64_t* data, std::size_t count) {
  write_raw<std::uint64_t>(out, count);
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
}

std::vector<std::uint64_t> read_u64_vector(std::istream& in, std::uint64_t max_count) {
  const auto count = read_raw<std::uint64_t>(in);
  // max_count is always <= kMaxElements (2^28) at the call sites, so after
  // this check `count * sizeof(std::uint64_t)` is <= 2^31 and the streamsize
  // cast below cannot wrap.
  if (count > max_count)
    throw std::runtime_error("serialization: implausible element count");
  std::vector<std::uint64_t> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(std::uint64_t)));
  if (!in) throw std::runtime_error("serialization: unexpected end of stream");
  return data;
}

constexpr std::uint64_t kMaxElements = std::uint64_t{1} << 28;  // 2 GiB guard

void save_poly_body(const Poly& poly, std::ostream& out) {
  write_raw<std::uint64_t>(out, poly.coeff_count());
  write_raw<std::uint64_t>(out, poly.coeff_mod_count());
  out.write(reinterpret_cast<const char*>(poly.data()),
            static_cast<std::streamsize>(poly.coeff_count() * poly.coeff_mod_count() *
                                         sizeof(std::uint64_t)));
}

Poly load_poly_body(std::istream& in) {
  const auto n = read_raw<std::uint64_t>(in);
  const auto k = read_raw<std::uint64_t>(in);
  // Division form: the product guard `n * k > kMaxElements` wraps on uint64
  // multiply (n = k = 2^33 passes yet requests a ~2^66-element Poly).
  if (n == 0 || k == 0 || n > kMaxElements / k)
    throw std::runtime_error("serialization: implausible poly shape");
  Poly poly(n, k);
  // n * k <= kMaxElements (2^28), so the byte count is <= 2^31 and the
  // streamsize cast cannot wrap.
  in.read(reinterpret_cast<char*>(poly.data()),
          static_cast<std::streamsize>(n * k * sizeof(std::uint64_t)));
  if (!in) throw std::runtime_error("serialization: unexpected end of stream");
  return poly;
}

}  // namespace

void save_poly(const Poly& poly, std::ostream& out) {
  write_header(out, kPolyTag);
  save_poly_body(poly, out);
  if (!out) throw std::runtime_error("serialization: write failed");
}

Poly load_poly(std::istream& in) {
  expect_header(in, kPolyTag, "poly");
  return load_poly_body(in);
}

void save_plaintext(const Plaintext& plain, std::ostream& out) {
  write_header(out, kPlainTag);
  write_u64_vector(out, plain.coeffs().data(), plain.coeff_count());
  if (!out) throw std::runtime_error("serialization: write failed");
}

Plaintext load_plaintext(std::istream& in) {
  expect_header(in, kPlainTag, "plaintext");
  return Plaintext(read_u64_vector(in, kMaxElements));
}

void save_ciphertext(const Ciphertext& ct, std::ostream& out) {
  write_header(out, kCiphertextTag);
  write_raw<std::uint64_t>(out, ct.size());
  for (std::size_t i = 0; i < ct.size(); ++i) save_poly_body(ct[i], out);
  if (!out) throw std::runtime_error("serialization: write failed");
}

Ciphertext load_ciphertext(std::istream& in) {
  expect_header(in, kCiphertextTag, "ciphertext");
  const auto count = read_raw<std::uint64_t>(in);
  if (count < 2 || count > 8)
    throw std::runtime_error("serialization: implausible ciphertext size");
  Ciphertext ct;
  for (std::uint64_t i = 0; i < count; ++i) ct.push_back(load_poly_body(in));
  return ct;
}

void save_public_key(const PublicKey& pk, std::ostream& out) {
  write_header(out, kPublicKeyTag);
  save_poly_body(pk.p0, out);
  save_poly_body(pk.p1, out);
  if (!out) throw std::runtime_error("serialization: write failed");
}

PublicKey load_public_key(std::istream& in) {
  expect_header(in, kPublicKeyTag, "public key");
  PublicKey pk;
  pk.p0 = load_poly_body(in);
  pk.p1 = load_poly_body(in);
  return pk;
}

void save_secret_key(const SecretKey& sk, std::ostream& out) {
  write_header(out, kSecretKeyTag);
  save_poly_body(sk.s, out);
  if (!out) throw std::runtime_error("serialization: write failed");
}

SecretKey load_secret_key(std::istream& in) {
  expect_header(in, kSecretKeyTag, "secret key");
  SecretKey sk;
  sk.s = load_poly_body(in);
  return sk;
}

bool conforms_to(const Poly& poly, const Context& context) {
  if (poly.coeff_count() != context.n()) return false;
  if (poly.coeff_mod_count() != context.coeff_mod_count()) return false;
  const auto& moduli = context.coeff_modulus();
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < poly.coeff_count(); ++i) {
      if (poly.at(i, j) >= moduli[j].value()) return false;
    }
  }
  return true;
}

void save_ciphertext_file(const Ciphertext& ct, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialization: cannot open " + path);
  save_ciphertext(ct, out);
}

Ciphertext load_ciphertext_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialization: cannot open " + path);
  return load_ciphertext(in);
}

void save_public_key_file(const PublicKey& pk, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("serialization: cannot open " + path);
  save_public_key(pk, out);
}

PublicKey load_public_key_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("serialization: cannot open " + path);
  return load_public_key(in);
}

}  // namespace reveal::seal
