#pragma once
// CRT (residue number system) composition: maps per-modulus residues back
// to the integer in [0, q1*...*qk). Shared by decryption, message recovery
// and any code that needs exact multi-precision views of RNS values.

#include <cstdint>
#include <vector>

#include "seal/biguint.hpp"
#include "seal/modulus.hpp"
#include "seal/poly.hpp"

namespace reveal::seal {

class CrtComposer {
 public:
  /// Precomputes the punctured products q/q_j and their inverses mod q_j.
  /// Moduli must be pairwise coprime (primes in practice); throws
  /// std::invalid_argument if an inverse does not exist.
  explicit CrtComposer(const std::vector<Modulus>& moduli);

  [[nodiscard]] const BigUInt& total_modulus() const noexcept { return total_; }
  [[nodiscard]] std::size_t modulus_count() const noexcept { return moduli_.size(); }

  /// Composes one residue vector (residues[j] mod q_j) into x in [0, q).
  [[nodiscard]] BigUInt compose(const std::vector<std::uint64_t>& residues) const;

  /// Composes coefficient i of an RNS poly.
  [[nodiscard]] BigUInt compose(const Poly& poly, std::size_t i) const;

  /// Centered magnitude |x|, folding values above q/2 to q - x.
  [[nodiscard]] BigUInt centered_magnitude(const BigUInt& x) const;

 private:
  std::vector<Modulus> moduli_;
  BigUInt total_;
  BigUInt half_total_;
  std::vector<BigUInt> punctured_;              // q / q_j
  std::vector<std::uint64_t> inv_punctured_;    // (q/q_j)^{-1} mod q_j
};

}  // namespace reveal::seal
