#include "seal/poly.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "seal/modarith.hpp"

namespace reveal::seal::polyops {

namespace {

void check_shapes(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli) {
  if (a.coeff_count() != b.coeff_count() || a.coeff_mod_count() != b.coeff_mod_count())
    throw std::invalid_argument("polyops: operand shape mismatch");
  if (a.coeff_mod_count() != moduli.size())
    throw std::invalid_argument("polyops: modulus count mismatch");
}

void prepare_result(const Poly& a, Poly& result) {
  if (result.coeff_count() != a.coeff_count() ||
      result.coeff_mod_count() != a.coeff_mod_count()) {
    result = Poly(a.coeff_count(), a.coeff_mod_count());
  }
}

}  // namespace

void add(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli, Poly& result) {
  check_shapes(a, b, moduli);
  prepare_result(a, result);
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < a.coeff_count(); ++i) {
      result.at(i, j) = add_mod(a.at(i, j), b.at(i, j), moduli[j]);
    }
  }
}

void sub(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli, Poly& result) {
  check_shapes(a, b, moduli);
  prepare_result(a, result);
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < a.coeff_count(); ++i) {
      result.at(i, j) = sub_mod(a.at(i, j), b.at(i, j), moduli[j]);
    }
  }
}

void negate(const Poly& a, const std::vector<Modulus>& moduli, Poly& result) {
  if (a.coeff_mod_count() != moduli.size())
    throw std::invalid_argument("polyops::negate: modulus count mismatch");
  prepare_result(a, result);
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < a.coeff_count(); ++i) {
      result.at(i, j) = negate_mod(a.at(i, j), moduli[j]);
    }
  }
}

void multiply_scalar(const Poly& a, std::uint64_t scalar, const std::vector<Modulus>& moduli,
                     Poly& result) {
  if (a.coeff_mod_count() != moduli.size())
    throw std::invalid_argument("polyops::multiply_scalar: modulus count mismatch");
  prepare_result(a, result);
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    const std::uint64_t s = moduli[j].reduce(scalar);
    for (std::size_t i = 0; i < a.coeff_count(); ++i) {
      result.at(i, j) = mul_mod(a.at(i, j), s, moduli[j]);
    }
  }
}

void dyadic_product(const Poly& a, const Poly& b, const std::vector<Modulus>& moduli,
                    Poly& result) {
  check_shapes(a, b, moduli);
  prepare_result(a, result);
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < a.coeff_count(); ++i) {
      result.at(i, j) = mul_mod(a.at(i, j), b.at(i, j), moduli[j]);
    }
  }
}

std::uint64_t infinity_norm_centered(const Poly& a, const Modulus& q) {
  if (a.coeff_mod_count() != 1)
    throw std::invalid_argument("infinity_norm_centered: single-modulus polys only");
  std::uint64_t worst = 0;
  for (std::size_t i = 0; i < a.coeff_count(); ++i) {
    const std::int64_t centered = center_mod(a.at(i, 0), q);
    const auto mag = static_cast<std::uint64_t>(std::llabs(centered));
    worst = std::max(worst, mag);
  }
  return worst;
}


void apply_galois(const Poly& a, std::uint32_t galois_element,
                  const std::vector<Modulus>& moduli, Poly& result) {
  const std::size_t n = a.coeff_count();
  if (a.coeff_mod_count() != moduli.size())
    throw std::invalid_argument("polyops::apply_galois: modulus count mismatch");
  if ((galois_element & 1u) == 0 || galois_element >= 2 * n)
    throw std::invalid_argument(
        "polyops::apply_galois: element must be odd and below 2n");
  Poly out(n, moduli.size());
  // x^i -> x^(i*g mod 2n); exponents >= n pick up a sign (x^n = -1).
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t exponent = (i * galois_element) % (2 * n);
    const bool negate_term = exponent >= n;
    const std::size_t target = negate_term ? exponent - n : exponent;
    for (std::size_t j = 0; j < moduli.size(); ++j) {
      const std::uint64_t v = a.at(i, j);
      out.at(target, j) = negate_term ? negate_mod(v, moduli[j]) : v;
    }
  }
  result = std::move(out);
}

}  // namespace reveal::seal::polyops
