#pragma once
// BFV encryption parameters and the precomputed context, mirroring SEAL's
// EncryptionParameters / SEALContext split.

#include <cstdint>
#include <memory>
#include <vector>

#include "seal/biguint.hpp"
#include "seal/modulus.hpp"
#include "seal/ntt.hpp"
#include "seal/ntt_fast.hpp"

namespace reveal::seal {

class EncryptionParameters {
 public:
  EncryptionParameters() = default;

  void set_poly_modulus_degree(std::size_t degree) { poly_modulus_degree_ = degree; }
  void set_coeff_modulus(std::vector<Modulus> moduli) { coeff_modulus_ = std::move(moduli); }
  void set_plain_modulus(const Modulus& t) { plain_modulus_ = t; }
  void set_plain_modulus(std::uint64_t t) { plain_modulus_ = Modulus(t); }
  /// Gaussian error parameters; SEAL default sigma = 3.19 ≈ 8/sqrt(2*pi).
  void set_noise_standard_deviation(double sigma) { noise_standard_deviation_ = sigma; }
  void set_noise_max_deviation(double max_dev) { noise_max_deviation_ = max_dev; }

  [[nodiscard]] std::size_t poly_modulus_degree() const noexcept {
    return poly_modulus_degree_;
  }
  [[nodiscard]] const std::vector<Modulus>& coeff_modulus() const noexcept {
    return coeff_modulus_;
  }
  [[nodiscard]] const Modulus& plain_modulus() const noexcept { return plain_modulus_; }
  [[nodiscard]] double noise_standard_deviation() const noexcept {
    return noise_standard_deviation_;
  }
  [[nodiscard]] double noise_max_deviation() const noexcept { return noise_max_deviation_; }

  /// The parameter set attacked in the paper: n = 1024, a single 27-bit
  /// NTT-friendly prime q = 132120577, t = 256, sigma = 3.19
  /// (SEAL-128 smallest parameter set; paper Table III).
  static EncryptionParameters seal_128_1024();

  /// Scaled-down parameters for fast tests: n = 256, 20-bit prime, t = 64.
  static EncryptionParameters toy_256();

  /// Larger preset: n = 4096 with three 36-bit primes, t = 65537.
  static EncryptionParameters seal_128_4096();

  /// Multiplication-friendly toy parameters: n = 64, one 35-bit prime,
  /// t = 64 — enough noise budget for one multiply + relinearization.
  static EncryptionParameters toy_mul_64();

 private:
  std::size_t poly_modulus_degree_ = 0;
  std::vector<Modulus> coeff_modulus_;
  Modulus plain_modulus_;
  double noise_standard_deviation_ = 3.19;
  // Paper §II-A: "each sampled coefficient is between -41 and 41".
  double noise_max_deviation_ = 41.0;
};

/// Validated parameters plus everything derived from them: NTT tables per
/// modulus, the composite modulus q, Delta = floor(q/t) and its RNS
/// residues, and decryption thresholds.
class Context {
 public:
  /// Validates and precomputes; throws std::invalid_argument when the
  /// parameters are unusable (n not a power of two, modulus not
  /// NTT-friendly, t >= q, duplicate moduli, ...).
  explicit Context(EncryptionParameters parms);

  [[nodiscard]] const EncryptionParameters& parms() const noexcept { return parms_; }
  [[nodiscard]] std::size_t n() const noexcept { return parms_.poly_modulus_degree(); }
  [[nodiscard]] std::size_t coeff_mod_count() const noexcept {
    return parms_.coeff_modulus().size();
  }
  [[nodiscard]] const std::vector<Modulus>& coeff_modulus() const noexcept {
    return parms_.coeff_modulus();
  }
  [[nodiscard]] const Modulus& plain_modulus() const noexcept {
    return parms_.plain_modulus();
  }
  [[nodiscard]] const std::vector<NttTables>& ntt_tables() const noexcept {
    return ntt_tables_;
  }
  /// Shoup/Harvey tables — same transforms, ~6x faster; used on hot paths.
  [[nodiscard]] const std::vector<FastNttTables>& fast_ntt_tables() const noexcept {
    return fast_ntt_tables_;
  }

  /// Composite ciphertext modulus q = q_1 * ... * q_k.
  [[nodiscard]] const BigUInt& total_coeff_modulus() const noexcept { return total_q_; }
  /// Delta = floor(q / t).
  [[nodiscard]] const BigUInt& delta() const noexcept { return delta_; }
  /// Delta mod q_j for each RNS component (used to scale plaintexts).
  [[nodiscard]] const std::vector<std::uint64_t>& delta_mod_qj() const noexcept {
    return delta_mod_qj_;
  }

 private:
  EncryptionParameters parms_;
  std::vector<NttTables> ntt_tables_;
  std::vector<FastNttTables> fast_ntt_tables_;
  BigUInt total_q_;
  BigUInt delta_;
  std::vector<std::uint64_t> delta_mod_qj_;
};

}  // namespace reveal::seal
