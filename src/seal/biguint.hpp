#pragma once
// Minimal arbitrary-precision unsigned integer.
//
// Needed for CRT composition of multi-limb RNS ciphertext moduli and for the
// exact ⌊t·v/q⌉ rounding in BFV decryption. Only the handful of operations
// the decryption path needs are provided; performance is adequate for the
// few thousand values per decryption.

#include <cstdint>
#include <string>
#include <vector>

namespace reveal::seal {

class BigUInt {
 public:
  BigUInt() = default;
  /// From a single 64-bit value.
  explicit BigUInt(std::uint64_t value);

  /// Value as limbs, least significant first (normalized: no leading zeros).
  [[nodiscard]] const std::vector<std::uint64_t>& limbs() const noexcept { return limbs_; }
  [[nodiscard]] bool is_zero() const noexcept { return limbs_.empty(); }
  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bit_count() const noexcept;
  /// Value of bit i (false beyond the top).
  [[nodiscard]] bool bit(std::size_t i) const noexcept;
  /// Low 64 bits.
  [[nodiscard]] std::uint64_t low_word() const noexcept {
    return limbs_.empty() ? 0 : limbs_[0];
  }
  /// Conversion to double (may lose precision; used for logs/diagnostics).
  [[nodiscard]] double to_double() const noexcept;
  [[nodiscard]] std::string to_string() const;  // decimal

  BigUInt& operator+=(const BigUInt& rhs);
  BigUInt& operator-=(const BigUInt& rhs);  // requires *this >= rhs
  BigUInt& operator<<=(std::size_t bits);
  BigUInt& operator>>=(std::size_t bits);

  friend BigUInt operator+(BigUInt a, const BigUInt& b) { return a += b; }
  friend BigUInt operator-(BigUInt a, const BigUInt& b) { return a -= b; }

  /// Full product.
  friend BigUInt operator*(const BigUInt& a, const BigUInt& b);
  /// Product with a 64-bit word.
  friend BigUInt operator*(const BigUInt& a, std::uint64_t b);

  /// Three-way comparison.
  [[nodiscard]] int compare(const BigUInt& rhs) const noexcept;
  friend bool operator==(const BigUInt& a, const BigUInt& b) noexcept {
    return a.compare(b) == 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) noexcept {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) noexcept {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) noexcept {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) noexcept {
    return a.compare(b) >= 0;
  }

  /// Quotient and remainder; throws std::domain_error on division by zero.
  struct DivResult;
  [[nodiscard]] static DivResult divmod(const BigUInt& numerator, const BigUInt& denominator);

  /// value mod m (m a 64-bit word, nonzero).
  [[nodiscard]] std::uint64_t mod_word(std::uint64_t m) const;

 private:
  void normalize() noexcept;
  std::vector<std::uint64_t> limbs_;  // little-endian
};

struct BigUInt::DivResult {
  BigUInt quotient;
  BigUInt remainder;
};

}  // namespace reveal::seal
