#pragma once
// Negacyclic Number Theoretic Transform over Z_q[x]/(x^n + 1).
//
// Precomputes powers of a primitive 2n-th root of unity psi in bit-reversed
// order (SEAL/Harvey layout). Forward transform is Cooley-Tukey, inverse is
// Gentleman-Sande with a final n^{-1} scaling; the psi^i twists make the
// transform negacyclic so that pointwise products realize multiplication
// modulo x^n + 1.

#include <cstdint>
#include <vector>

#include "seal/modulus.hpp"

namespace reveal::seal {

class NttTables {
 public:
  /// Precomputes tables for degree-n transforms mod q. Requirements:
  /// n a power of two, q prime with q ≡ 1 (mod 2n). Throws otherwise.
  NttTables(std::size_t n, const Modulus& q);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] const Modulus& modulus() const noexcept { return q_; }
  [[nodiscard]] std::uint64_t psi() const noexcept { return psi_; }

  /// In-place forward negacyclic NTT (coefficient order in, bit-reversed
  /// evaluation order out — consistent with inverse_transform).
  void forward_transform(std::uint64_t* values) const noexcept;

  /// In-place inverse negacyclic NTT.
  void inverse_transform(std::uint64_t* values) const noexcept;

  void forward_transform(std::vector<std::uint64_t>& values) const;
  void inverse_transform(std::vector<std::uint64_t>& values) const;

 private:
  std::size_t n_ = 0;
  int log_n_ = 0;
  Modulus q_;
  std::uint64_t psi_ = 0;          // primitive 2n-th root of unity
  std::uint64_t inv_n_ = 0;        // n^{-1} mod q
  std::vector<std::uint64_t> root_powers_;      // psi^bitrev(i)
  std::vector<std::uint64_t> inv_root_powers_;  // psi^{-bitrev(i)} layout for GS
};

/// Bit reversal of `value` within `bits` bits.
[[nodiscard]] std::size_t reverse_bits(std::size_t value, int bits) noexcept;

}  // namespace reveal::seal
