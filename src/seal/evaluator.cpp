#include "seal/evaluator.hpp"

#include <cmath>
#include <stdexcept>

#include "seal/crt.hpp"
#include "seal/modarith.hpp"
#include "seal/poly.hpp"

namespace reveal::seal {

namespace {
__extension__ typedef __int128 i128;
}

void Evaluator::add_inplace(Ciphertext& a, const Ciphertext& b) const {
  if (a.size() != b.size())
    throw std::invalid_argument("Evaluator::add: ciphertext size mismatch");
  const auto& moduli = context_.coeff_modulus();
  for (std::size_t c = 0; c < a.size(); ++c) polyops::add(a[c], b[c], moduli, a[c]);
}

void Evaluator::sub_inplace(Ciphertext& a, const Ciphertext& b) const {
  if (a.size() != b.size())
    throw std::invalid_argument("Evaluator::sub: ciphertext size mismatch");
  const auto& moduli = context_.coeff_modulus();
  for (std::size_t c = 0; c < a.size(); ++c) polyops::sub(a[c], b[c], moduli, a[c]);
}

void Evaluator::negate_inplace(Ciphertext& a) const {
  const auto& moduli = context_.coeff_modulus();
  for (std::size_t c = 0; c < a.size(); ++c) polyops::negate(a[c], moduli, a[c]);
}

void Evaluator::add_plain_inplace(Ciphertext& a, const Plaintext& plain) const {
  const auto& moduli = context_.coeff_modulus();
  const auto& delta = context_.delta_mod_qj();
  const std::uint64_t t = context_.plain_modulus().value();
  if (plain.coeff_count() > context_.n())
    throw std::invalid_argument("Evaluator::add_plain: plaintext too long");
  for (std::size_t i = 0; i < plain.coeff_count(); ++i) {
    if (plain[i] >= t) throw std::invalid_argument("Evaluator::add_plain: coefficient >= t");
    for (std::size_t j = 0; j < moduli.size(); ++j) {
      const std::uint64_t scaled = mul_mod(moduli[j].reduce(plain[i]), delta[j], moduli[j]);
      a[0].at(i, j) = add_mod(a[0].at(i, j), scaled, moduli[j]);
    }
  }
}

void Evaluator::multiply_plain_inplace(Ciphertext& a, const Plaintext& plain) const {
  const auto& moduli = context_.coeff_modulus();
  const auto& tables = context_.fast_ntt_tables();
  if (plain.coeff_count() > context_.n())
    throw std::invalid_argument("Evaluator::multiply_plain: plaintext too long");
  // Lift the plaintext into each RNS component, then negacyclic-multiply.
  Poly lifted(context_.n(), moduli.size());
  for (std::size_t i = 0; i < plain.coeff_count(); ++i) {
    for (std::size_t j = 0; j < moduli.size(); ++j) {
      lifted.at(i, j) = moduli[j].reduce(plain[i]);
    }
  }
  for (std::size_t c = 0; c < a.size(); ++c) {
    polyops::multiply_ntt(a[c], lifted, tables, a[c]);
  }
}

Ciphertext Evaluator::multiply(const Ciphertext& a, const Ciphertext& b) const {
  if (a.size() != 2 || b.size() != 2)
    throw std::invalid_argument("Evaluator::multiply: operands must have 2 components");
  const std::size_t n = context_.n();
  const auto& moduli = context_.coeff_modulus();
  const std::uint64_t t = context_.plain_modulus().value();
  const CrtComposer crt(moduli);
  const double log2_q = std::log2(crt.total_modulus().to_double());
  // Coefficients of the integer tensor product reach n*(q/2)^2, and the
  // scaling multiplies by t; everything must fit in a signed 128-bit
  // integer: 2*log2(q) + log2(n) + log2(t) < 126.
  {
    const double budget_bits = 2.0 * log2_q + std::log2(static_cast<double>(n)) +
                               std::log2(static_cast<double>(t));
    if (budget_bits >= 126.0)
      throw std::logic_error("Evaluator::multiply: parameters too large for i128 tensor");
  }
  // q as a 128-bit integer (< 2^62 by the budget check above when n*t > 4).
  const auto big_to_i128 = [](const BigUInt& v) {
    i128 out = 0;
    const auto& limbs = v.limbs();
    if (limbs.size() >= 2) out = static_cast<i128>(limbs[1]) << 64;
    if (!limbs.empty()) out |= static_cast<i128>(limbs[0]);
    return out;
  };
  const i128 q_total = big_to_i128(crt.total_modulus());

  // Centered integer representatives of each component (CRT-composed for
  // multi-modulus operands).
  auto centered = [&](const Poly& p) {
    std::vector<i128> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (moduli.size() == 1) {
        out[i] = center_mod(p.at(i, 0), moduli[0]);
      } else {
        const BigUInt x = crt.compose(p, i);
        const BigUInt mag = crt.centered_magnitude(x);  // |x centered| = q-x above q/2
        const bool negative = x > mag;                  // x was above q/2
        out[i] = negative ? -big_to_i128(mag) : big_to_i128(mag);
      }
    }
    return out;
  };
  const std::vector<i128> a0 = centered(a[0]);
  const std::vector<i128> a1 = centered(a[1]);
  const std::vector<i128> b0 = centered(b[0]);
  const std::vector<i128> b1 = centered(b[1]);

  // Negacyclic schoolbook convolution over the integers.
  auto convolve = [n](const std::vector<i128>& x, const std::vector<i128>& y) {
    std::vector<i128> out(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (x[i] == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t k = i + j;
        const i128 prod = x[i] * y[j];
        if (k < n) out[k] += prod;
        else out[k - n] -= prod;  // x^n = -1
      }
    }
    return out;
  };

  std::vector<i128> d0 = convolve(a0, b0);
  std::vector<i128> d2 = convolve(a1, b1);
  // d1 = a0*b1 + a1*b0 computed via (a0+a1)*(b0+b1) - d0 - d2 (Karatsuba-ish).
  std::vector<i128> a01(n), b01(n);
  for (std::size_t i = 0; i < n; ++i) {
    a01[i] = a0[i] + a1[i];
    b01[i] = b0[i] + b1[i];
  }
  std::vector<i128> d1 = convolve(a01, b01);
  for (std::size_t i = 0; i < n; ++i) d1[i] -= d0[i] + d2[i];

  // Scale by t/q with rounding, then reduce into every RNS component.
  auto scale_round = [&](std::vector<i128>& d, Poly& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const i128 num = d[i] * static_cast<i128>(t);
      // round(num/q) for signed num with positive q.
      i128 rounded;
      if (num >= 0) rounded = (num + q_total / 2) / q_total;
      else rounded = -((-num + q_total / 2) / q_total);
      for (std::size_t j = 0; j < moduli.size(); ++j) {
        const auto qj = static_cast<i128>(moduli[j].value());
        i128 reduced = rounded % qj;
        if (reduced < 0) reduced += qj;
        out.at(i, j) = static_cast<std::uint64_t>(reduced);
      }
    }
  };

  Ciphertext result;
  result.resize(3, n, moduli.size());
  scale_round(d0, result[0]);
  scale_round(d1, result[1]);
  scale_round(d2, result[2]);
  return result;
}

void Evaluator::relinearize_inplace(Ciphertext& a, const RelinKeys& rk) const {
  if (a.size() != 3)
    throw std::invalid_argument("Evaluator::relinearize: ciphertext must have 3 components");
  if (context_.coeff_mod_count() != 1)
    throw std::logic_error("Evaluator::relinearize: single-modulus contexts only");
  const Modulus& q = context_.coeff_modulus()[0];
  const auto& moduli = context_.coeff_modulus();
  const auto& tables = context_.fast_ntt_tables();
  const int w_bits = rk.decomposition_bit_count;
  const std::uint64_t w_mask = (std::uint64_t{1} << w_bits) - 1;
  const std::size_t n = context_.n();

  Poly acc0 = a[0];
  Poly acc1 = a[1];
  // Decompose c2 into base-2^w digits and accumulate digit * rk[l].
  std::vector<std::uint64_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = a[2].at(i, 0);
  for (std::size_t l = 0; l < rk.keys.size(); ++l) {
    Poly digit(n, 1);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = remaining[i] & w_mask;
      remaining[i] >>= w_bits;
      digit.at(i, 0) = d;
      any_nonzero |= (d != 0);
    }
    if (!any_nonzero) continue;
    Poly term;
    polyops::multiply_ntt(digit, rk.keys[l].first, tables, term);
    polyops::add(acc0, term, moduli, acc0);
    polyops::multiply_ntt(digit, rk.keys[l].second, tables, term);
    polyops::add(acc1, term, moduli, acc1);
  }
  (void)q;

  Ciphertext out;
  out.push_back(std::move(acc0));
  out.push_back(std::move(acc1));
  a = std::move(out);
}


void Evaluator::apply_galois_inplace(Ciphertext& a, std::uint32_t galois_element,
                                     const GaloisKeys& gk) const {
  if (a.size() != 2)
    throw std::invalid_argument("Evaluator::apply_galois: need a 2-component ciphertext");
  if (context_.coeff_mod_count() != 1)
    throw std::logic_error("Evaluator::apply_galois: single-modulus contexts only");
  const auto it = gk.keys.find(galois_element);
  if (it == gk.keys.end())
    throw std::invalid_argument("Evaluator::apply_galois: no key for this element");
  const auto& moduli = context_.coeff_modulus();
  const auto& tables = context_.fast_ntt_tables();
  const std::size_t n = context_.n();

  // (c0(x^g), c1(x^g)) decrypts under s(x^g); key-switch c1 back to s.
  Poly c0_g, c1_g;
  polyops::apply_galois(a[0], galois_element, moduli, c0_g);
  polyops::apply_galois(a[1], galois_element, moduli, c1_g);

  const int w_bits = gk.decomposition_bit_count;
  const std::uint64_t w_mask = (std::uint64_t{1} << w_bits) - 1;
  Poly acc0 = std::move(c0_g);
  Poly acc1(n, 1);
  std::vector<std::uint64_t> remaining(n);
  for (std::size_t i = 0; i < n; ++i) remaining[i] = c1_g.at(i, 0);
  for (std::size_t l = 0; l < it->second.size(); ++l) {
    Poly digit(n, 1);
    bool any_nonzero = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = remaining[i] & w_mask;
      remaining[i] >>= w_bits;
      digit.at(i, 0) = d;
      any_nonzero |= (d != 0);
    }
    if (!any_nonzero) continue;
    Poly term;
    polyops::multiply_ntt(digit, it->second[l].first, tables, term);
    polyops::add(acc0, term, moduli, acc0);
    polyops::multiply_ntt(digit, it->second[l].second, tables, term);
    polyops::add(acc1, term, moduli, acc1);
  }

  Ciphertext out;
  out.push_back(std::move(acc0));
  out.push_back(std::move(acc1));
  a = std::move(out);
}

std::uint32_t Evaluator::galois_element_for_step(int step) const {
  const std::size_t two_n = 2 * context_.n();
  // 3 generates the order-n/2 subgroup of (Z/2nZ)* used for row rotations.
  std::uint64_t element = 1;
  const std::size_t positive_step =
      step >= 0 ? static_cast<std::size_t>(step)
                : context_.n() / 2 - (static_cast<std::size_t>(-step) % (context_.n() / 2));
  for (std::size_t k = 0; k < positive_step % (context_.n() / 2); ++k) {
    element = (element * 3) % two_n;
  }
  return static_cast<std::uint32_t>(element);
}

}  // namespace reveal::seal
