#include "seal/modarith.hpp"

#include <stdexcept>

namespace reveal::seal {

std::uint64_t pow_mod(std::uint64_t a, std::uint64_t exp, const Modulus& q) noexcept {
  std::uint64_t result = q.value() == 1 ? 0 : 1;
  a = q.reduce(a);
  while (exp != 0) {
    if (exp & 1) result = mul_mod(result, a, q);
    a = mul_mod(a, a, q);
    exp >>= 1;
  }
  return result;
}

std::uint64_t inverse_mod(std::uint64_t a, const Modulus& q) {
  a = q.reduce(a);
  if (a == 0) throw std::invalid_argument("inverse_mod: zero has no inverse");
  if (!q.is_prime()) throw std::invalid_argument("inverse_mod: modulus must be prime");
  return pow_mod(a, q.value() - 2, q);  // Fermat's little theorem
}

bool try_primitive_root(std::size_t two_n, const Modulus& q, std::uint64_t& root) {
  if (two_n == 0 || (q.value() - 1) % two_n != 0) return false;
  const std::uint64_t cofactor = (q.value() - 1) / two_n;
  // Try deterministic candidates; g^cofactor is a 2n-th root of unity, and
  // it is primitive iff its (2n/2)-th power is -1.
  for (std::uint64_t candidate = 2; candidate < q.value() && candidate < 2000; ++candidate) {
    const std::uint64_t r = pow_mod(candidate, cofactor, q);
    if (pow_mod(r, two_n / 2, q) == q.value() - 1) {
      root = r;
      return true;
    }
  }
  return false;
}

std::uint64_t minimal_primitive_root(std::size_t two_n, const Modulus& q) {
  std::uint64_t root = 0;
  if (!try_primitive_root(two_n, q, root))
    throw std::runtime_error("minimal_primitive_root: no primitive root found");
  // All primitive 2n-th roots are root^k for odd k; walk them to find the
  // smallest (SEAL does the same to make precomputations canonical).
  const std::uint64_t generator_sq = mul_mod(root, root, q);
  std::uint64_t current = root;
  std::uint64_t best = root;
  for (std::size_t i = 1; i < two_n / 2; ++i) {
    current = mul_mod(current, generator_sq, q);
    if (current < best) best = current;
  }
  return best;
}

}  // namespace reveal::seal
