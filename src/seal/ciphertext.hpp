#pragma once
// Plaintext and ciphertext value types for the BFV scheme.

#include <cstdint>
#include <vector>

#include "seal/poly.hpp"

namespace reveal::seal {

/// Plaintext polynomial in R_t: up to n coefficients, each < t.
/// Stored densely; missing high coefficients are implicitly zero.
class Plaintext {
 public:
  Plaintext() = default;
  explicit Plaintext(std::vector<std::uint64_t> coeffs) : coeffs_(std::move(coeffs)) {}
  /// Constant plaintext.
  explicit Plaintext(std::uint64_t value) : coeffs_{value} {}

  [[nodiscard]] std::size_t coeff_count() const noexcept { return coeffs_.size(); }
  [[nodiscard]] std::uint64_t operator[](std::size_t i) const noexcept {
    return i < coeffs_.size() ? coeffs_[i] : 0;
  }
  [[nodiscard]] std::vector<std::uint64_t>& coeffs() noexcept { return coeffs_; }
  [[nodiscard]] const std::vector<std::uint64_t>& coeffs() const noexcept { return coeffs_; }

  friend bool operator==(const Plaintext& a, const Plaintext& b) noexcept {
    // Equal up to trailing zeros.
    const std::size_t m = a.coeffs_.size() > b.coeffs_.size() ? a.coeffs_.size()
                                                              : b.coeffs_.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

 private:
  std::vector<std::uint64_t> coeffs_;
};

/// BFV ciphertext: 2 polynomials after encryption, 3 after an
/// un-relinearized multiplication.
class Ciphertext {
 public:
  Ciphertext() = default;

  [[nodiscard]] std::size_t size() const noexcept { return components_.size(); }
  [[nodiscard]] Poly& operator[](std::size_t i) noexcept { return components_[i]; }
  [[nodiscard]] const Poly& operator[](std::size_t i) const noexcept {
    return components_[i];
  }

  void resize(std::size_t count, std::size_t coeff_count, std::size_t coeff_mod_count) {
    components_.assign(count, Poly(coeff_count, coeff_mod_count));
  }
  void push_back(Poly p) { components_.push_back(std::move(p)); }

 private:
  std::vector<Poly> components_;
};

}  // namespace reveal::seal
