#include "seal/keys.hpp"

#include <stdexcept>

#include "seal/modarith.hpp"
#include "seal/sampler.hpp"

namespace reveal::seal {

KeyGenerator::KeyGenerator(const Context& context, UniformRandomGenerator& random)
    : context_(context), random_(random) {
  // SecretKeyGen: s <- R_2 (uniform ternary).
  sample_poly_ternary(secret_key_.s, random_, context_);

  // PublicKeyGen: a <- R_q uniform, e <- chi; pk = (-(a s + e), a).
  Poly a;
  sample_poly_uniform(a, random_, context_);
  Poly e = sample_error_poly(random_, context_);

  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();
  Poly as;
  polyops::multiply_ntt(a, secret_key_.s, tables, as);
  Poly as_plus_e;
  polyops::add(as, e, moduli, as_plus_e);
  polyops::negate(as_plus_e, moduli, public_key_.p0);
  public_key_.p1 = std::move(a);
}

RelinKeys KeyGenerator::create_relin_keys(int decomposition_bit_count) {
  if (context_.coeff_mod_count() != 1)
    throw std::invalid_argument(
        "create_relin_keys: only single-modulus contexts are supported");
  if (decomposition_bit_count < 1 || decomposition_bit_count > 60)
    throw std::invalid_argument("create_relin_keys: bad decomposition bit count");

  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();
  const Modulus& q = moduli[0];

  // s^2 in coefficient representation.
  Poly s_squared;
  polyops::multiply_ntt(secret_key_.s, secret_key_.s, tables, s_squared);

  RelinKeys rk;
  rk.decomposition_bit_count = decomposition_bit_count;
  const int q_bits = q.bit_count();
  const int levels = (q_bits + decomposition_bit_count - 1) / decomposition_bit_count;

  std::uint64_t factor = 1;  // w^l mod q
  for (int l = 0; l < levels; ++l) {
    Poly a;
    sample_poly_uniform(a, random_, context_);
    Poly e = sample_error_poly(random_, context_);

    Poly as;
    polyops::multiply_ntt(a, secret_key_.s, tables, as);
    Poly body;  // -(a s + e) + w^l s^2
    polyops::add(as, e, moduli, body);
    polyops::negate(body, moduli, body);
    Poly scaled_s2;
    polyops::multiply_scalar(s_squared, factor, moduli, scaled_s2);
    polyops::add(body, scaled_s2, moduli, body);

    rk.keys.emplace_back(std::move(body), std::move(a));
    // Advance w^l; the final level may overflow q, reduce as we go.
    for (int b = 0; b < decomposition_bit_count; ++b) factor = add_mod(factor, factor, q);
  }
  return rk;
}


GaloisKeys KeyGenerator::create_galois_keys(const std::vector<std::uint32_t>& elements,
                                            int decomposition_bit_count) {
  if (context_.coeff_mod_count() != 1)
    throw std::invalid_argument(
        "create_galois_keys: only single-modulus contexts are supported");
  if (decomposition_bit_count < 1 || decomposition_bit_count > 60)
    throw std::invalid_argument("create_galois_keys: bad decomposition bit count");

  const auto& tables = context_.fast_ntt_tables();
  const auto& moduli = context_.coeff_modulus();
  const Modulus& q = moduli[0];
  const int q_bits = q.bit_count();
  const int levels = (q_bits + decomposition_bit_count - 1) / decomposition_bit_count;

  GaloisKeys gk;
  gk.decomposition_bit_count = decomposition_bit_count;
  for (const std::uint32_t element : elements) {
    // s(x^g): the key the rotated c1 would decrypt under.
    Poly s_g;
    polyops::apply_galois(secret_key_.s, element, moduli, s_g);

    std::vector<std::pair<Poly, Poly>> switch_keys;
    std::uint64_t factor = 1;  // w^l mod q
    for (int l = 0; l < levels; ++l) {
      Poly a;
      sample_poly_uniform(a, random_, context_);
      Poly e = sample_error_poly(random_, context_);

      Poly as;
      polyops::multiply_ntt(a, secret_key_.s, tables, as);
      Poly body;  // -(a s + e) + w^l s(x^g)
      polyops::add(as, e, moduli, body);
      polyops::negate(body, moduli, body);
      Poly scaled;
      polyops::multiply_scalar(s_g, factor, moduli, scaled);
      polyops::add(body, scaled, moduli, body);

      switch_keys.emplace_back(std::move(body), std::move(a));
      for (int b = 0; b < decomposition_bit_count; ++b) factor = add_mod(factor, factor, q);
    }
    gk.keys.emplace(element, std::move(switch_keys));
  }
  return gk;
}

}  // namespace reveal::seal
