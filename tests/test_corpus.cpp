// Corpus store suite: round-trips, append/reopen, crash-safety (torn chunk
// tails, torn commit slots), bit-flip detection, and the writer-determinism
// contract the shard driver's merge leans on (corpus bytes are a pure
// function of the appended sequence and the chunking options).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "corpus/corpus_format.hpp"
#include "corpus/trace_store.hpp"

using namespace reveal::corpus;

namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "reveal_corpus_" + name;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

/// Deterministic ragged test traces: lengths vary (including an empty
/// trace) so record padding and offset-table paths all get exercised.
std::vector<std::vector<double>> make_traces(std::size_t count, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<std::vector<double>> traces(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t len = (i % 7 == 3) ? 0 : 16 + (i * 13) % 90;
    traces[i].resize(len);
    for (double& v : traces[i]) v = dist(rng);
  }
  return traces;
}

void expect_corpus_equals(const CorpusReader& reader,
                          const std::vector<std::vector<double>>& traces,
                          std::size_t base_label = 0) {
  ASSERT_EQ(reader.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const TraceView view = reader[i];
    EXPECT_EQ(view.label, static_cast<std::int32_t>(base_label + i));
    ASSERT_EQ(view.samples.size(), traces[i].size()) << "trace " << i;
    for (std::size_t s = 0; s < traces[i].size(); ++s) {
      EXPECT_EQ(view.samples[s], traces[i][s]);  // bit-equal through the mapping
    }
    // The format guarantees natural alignment for the zero-copy doubles.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(view.samples.data()) % alignof(double),
              0u);
  }
}

TEST(Corpus, RoundTripAcrossChunkBoundaries) {
  const std::string path = temp_path("roundtrip.rvlc");
  const auto traces = make_traces(100, 42);
  WriterOptions options;
  options.traces_per_chunk = 16;  // force several auto-commits
  {
    CorpusWriter writer = CorpusWriter::create(path, options);
    for (std::size_t i = 0; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
    EXPECT_EQ(writer.committed_traces(), traces.size());
    EXPECT_GE(writer.committed_chunks(), traces.size() / options.traces_per_chunk);
  }
  CorpusReader reader(path);
  expect_corpus_equals(reader, traces);
  EXPECT_THROW((void)reader.at(traces.size()), std::out_of_range);
}

TEST(Corpus, MaterializeCopiesOutOfTheMapping) {
  const std::string path = temp_path("materialize.rvlc");
  const auto traces = make_traces(5, 7);
  CorpusWriter writer = CorpusWriter::create(path);
  for (std::size_t i = 0; i < traces.size(); ++i)
    writer.add(static_cast<std::int32_t>(i), traces[i]);
  writer.close();
  CorpusReader reader(path);
  const reveal::sca::Trace t = reader.materialize(2);
  EXPECT_EQ(t.label, 2);
  EXPECT_EQ(t.samples, traces[2]);
}

TEST(Corpus, AppendReopensAndExtends) {
  const std::string path = temp_path("append.rvlc");
  const auto traces = make_traces(40, 9);
  {
    CorpusWriter writer = CorpusWriter::create(path);
    for (std::size_t i = 0; i < 25; ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }
  {
    CorpusWriter writer = CorpusWriter::append(path);
    EXPECT_EQ(writer.committed_traces(), 25u);
    for (std::size_t i = 25; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }
  CorpusReader reader(path);
  expect_corpus_equals(reader, traces);
}

TEST(Corpus, TornChunkTailIsInvisibleAndTruncatedOnReopen) {
  const std::string path = temp_path("torn_tail.rvlc");
  const auto traces = make_traces(20, 11);
  {
    CorpusWriter writer = CorpusWriter::create(path);
    for (std::size_t i = 0; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }
  // Simulate a kill mid-append: garbage chunk bytes past the commit pointer.
  auto bytes = read_file(path);
  const std::size_t committed = bytes.size();
  for (int i = 0; i < 200; ++i) bytes.push_back(static_cast<char>(0x5A ^ i));
  write_file(path, bytes);

  {
    CorpusReader reader(path);  // torn tail never reaches the reader
    expect_corpus_equals(reader, traces);
    EXPECT_EQ(reader.committed_bytes(), committed);
  }
  {
    CorpusWriter writer = CorpusWriter::append(path);  // truncates the tail
    writer.add(1000, traces[0]);
    writer.close();
  }
  EXPECT_EQ(read_file(path).size(), committed + kChunkHeaderBytes + 8 +
                                        kTraceRecordHeaderBytes +
                                        traces[0].size() * sizeof(double));
  CorpusReader reader(path);
  ASSERT_EQ(reader.size(), traces.size() + 1);
  EXPECT_EQ(reader[traces.size()].label, 1000);
}

TEST(Corpus, TornCommitSlotFallsBackToPreviousCommit) {
  const std::string path = temp_path("torn_slot.rvlc");
  const auto traces = make_traces(8, 13);
  {
    CorpusWriter writer = CorpusWriter::create(path);
    for (std::size_t i = 0; i < 4; ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.commit();  // seq 2 -> slot 0
    for (std::size_t i = 4; i < 8; ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.commit();  // seq 3 -> slot 1
    writer.close();
  }
  {
    CorpusReader full(path);
    ASSERT_EQ(full.size(), 8u);
  }
  // Tear the latest slot (seq 3 lives in slot seq % 2 == 1): its CRC fails
  // and both reader and appender must fall back to the seq-2 state.
  auto bytes = read_file(path);
  const std::size_t slot1 = offsetof(FileHeader, slots) + sizeof(CommitRecord);
  bytes[slot1 + 4] = static_cast<char>(bytes[slot1 + 4] ^ 0xFF);
  write_file(path, bytes);

  CorpusReader reader(path);
  ASSERT_EQ(reader.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(reader[i].label, static_cast<int>(i));

  {
    CorpusWriter writer = CorpusWriter::append(path);
    EXPECT_EQ(writer.committed_traces(), 4u);  // second chunk rolled back
    writer.add(99, traces[0]);
    writer.close();
  }
  CorpusReader after(path);
  ASSERT_EQ(after.size(), 5u);
  EXPECT_EQ(after[4].label, 99);
}

TEST(Corpus, BothSlotsTornIsRejected) {
  const std::string path = temp_path("both_slots.rvlc");
  {
    CorpusWriter writer = CorpusWriter::create(path);
    writer.add(0, std::vector<double>{1.0, 2.0});
    writer.close();
  }
  auto bytes = read_file(path);
  const std::size_t slots = offsetof(FileHeader, slots);
  for (std::size_t s = 0; s < 2; ++s)
    bytes[slots + s * sizeof(CommitRecord)] ^= static_cast<char>(0x41);
  write_file(path, bytes);
  EXPECT_THROW(CorpusReader reader(path), std::runtime_error);
  EXPECT_THROW((void)CorpusWriter::append(path), std::runtime_error);
}

TEST(Corpus, PayloadBitFlipIsDetected) {
  const std::string path = temp_path("bitflip.rvlc");
  const auto traces = make_traces(10, 17);
  {
    CorpusWriter writer = CorpusWriter::create(path);
    for (std::size_t i = 0; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }
  auto bytes = read_file(path);
  // Flip one bit deep in the sample payload of the single chunk.
  bytes[bytes.size() - 24] ^= 0x10;
  write_file(path, bytes);
  EXPECT_THROW(CorpusReader reader(path), std::runtime_error);  // payload CRC
  ReaderOptions trusting;
  trusting.verify_payload_crc = false;
  CorpusReader reader(path, trusting);  // structural walk alone still passes
  EXPECT_EQ(reader.size(), traces.size());
}

TEST(Corpus, WriterBytesAreAPureFunctionOfTheSequence) {
  const auto traces = make_traces(60, 23);
  WriterOptions options;
  options.traces_per_chunk = 8;
  const std::string a = temp_path("pure_a.rvlc");
  const std::string b = temp_path("pure_b.rvlc");
  for (const std::string& path : {a, b}) {
    CorpusWriter writer = CorpusWriter::create(path, options);
    for (std::size_t i = 0; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }
  EXPECT_EQ(read_file(a), read_file(b));
}

TEST(Corpus, MergeMatchesDirectWriteByteForByte) {
  // The shard-merge contract: per-shard corpora over contiguous ranges,
  // merged in shard order, equal the single-writer corpus bit-for-bit.
  const auto traces = make_traces(50, 29);
  WriterOptions options;
  options.traces_per_chunk = 8;

  const std::string direct = temp_path("merge_direct.rvlc");
  {
    CorpusWriter writer = CorpusWriter::create(direct, options);
    for (std::size_t i = 0; i < traces.size(); ++i)
      writer.add(static_cast<std::int32_t>(i), traces[i]);
    writer.close();
  }

  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    std::vector<std::string> sources;
    const std::size_t per = (traces.size() + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t begin = std::min(per * s, traces.size());
      const std::size_t end = std::min(begin + per, traces.size());
      // Shard files use a *different* chunking than the merge target — the
      // merged bytes must depend only on the trace sequence.
      WriterOptions shard_options;
      shard_options.traces_per_chunk = 3 + s;
      const std::string path =
          temp_path("merge_shard_" + std::to_string(shards) + "_" + std::to_string(s));
      CorpusWriter writer = CorpusWriter::create(path, shard_options);
      for (std::size_t i = begin; i < end; ++i)
        writer.add(static_cast<std::int32_t>(i), traces[i]);
      writer.close();
      sources.push_back(path);
    }
    const std::string merged = temp_path("merged_" + std::to_string(shards) + ".rvlc");
    merge_corpora(merged, sources, options);
    EXPECT_EQ(read_file(merged), read_file(direct));
  }
}

TEST(Corpus, EmptyCorpusRoundTrips) {
  const std::string path = temp_path("empty.rvlc");
  {
    CorpusWriter writer = CorpusWriter::create(path);
    writer.close();
  }
  CorpusReader reader(path);
  EXPECT_TRUE(reader.empty());
  EXPECT_EQ(reader.chunk_count(), 0u);
  merge_corpora(temp_path("empty_merged.rvlc"), {path, path});
  CorpusReader merged(temp_path("empty_merged.rvlc"));
  EXPECT_TRUE(merged.empty());
}

TEST(Corpus, PayloadBudgetForcesEarlyCommits) {
  const std::string path = temp_path("budget.rvlc");
  WriterOptions options;
  options.traces_per_chunk = 1 << 20;  // never reached
  options.chunk_payload_budget = 1024;  // ~1 trace of 90 doubles per chunk
  const auto traces = make_traces(12, 31);
  CorpusWriter writer = CorpusWriter::create(path, options);
  for (std::size_t i = 0; i < traces.size(); ++i)
    writer.add(static_cast<std::int32_t>(i), traces[i]);
  writer.close();
  EXPECT_GT(writer.committed_chunks(), 1u);
  CorpusReader reader(path);
  expect_corpus_equals(reader, traces);
}

}  // namespace
