// Serial/parallel equivalence suite: the campaign engine's central promise
// is that num_workers is a pure throughput knob — for the same seeds, every
// worker count produces *byte-identical* results. This suite runs the full
// degradation-aware campaign (capture -> robust segmentation -> sign/value
// classification -> hint routing -> DBDD estimate) for five seed bases at
// num_workers in {0, 1, 4} and asserts bit-equality of every RecoveryReport
// field (doubles compared with ==, not tolerances), every CoefficientGuess,
// and every routed HintRecord. It also pins the two pillars the engine
// stands on: capture history-independence (per-worker campaign replicas are
// sound) and collect_windows parallel/serial identity.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/campaign_runner.hpp"
#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "lwe/dbdd.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

CampaignConfig degraded_config() {
  CampaignConfig cfg;
  cfg.n = 64;
  // Mild acquisition faults so the campaign exercises the degraded routing
  // paths (low-confidence, sign-only, skipped) — equivalence must hold for
  // the full policy surface, not just the all-perfect clean case.
  cfg.faults.jitter_sigma = 0.4;
  cfg.faults.dropout_rate = 0.02;
  cfg.faults.glitch_count = 2;
  return cfg;
}

AttackConfig gated_attack_config() {
  AttackConfig acfg;
  acfg.abstain_margin = 0.30;
  acfg.low_confidence_margin = 0.45;
  acfg.value_commit_threshold = 0.05;
  acfg.sign_fit_threshold = 2.5;
  acfg.value_fit_threshold = 4.0;
  return acfg;
}

void expect_guesses_identical(const CoefficientGuess& a, const CoefficientGuess& b) {
  EXPECT_EQ(a.sign, b.sign);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.support, b.support);
  EXPECT_EQ(a.posterior, b.posterior);  // vector<double> ==: bit-equal
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.sign_trusted, b.sign_trusted);
  EXPECT_EQ(a.sign_margin, b.sign_margin);
}

void expect_reports_identical(const sca::RecoveryReport& a, const sca::RecoveryReport& b) {
  EXPECT_EQ(a.expected_windows, b.expected_windows);
  EXPECT_EQ(a.recovered_windows, b.recovered_windows);
  EXPECT_EQ(a.segmentation_status, b.segmentation_status);
  EXPECT_EQ(a.segmentation_attempts, b.segmentation_attempts);
  EXPECT_EQ(a.burst_consistency, b.burst_consistency);  // bit-equal
  EXPECT_EQ(a.ok_guesses, b.ok_guesses);
  EXPECT_EQ(a.low_confidence_guesses, b.low_confidence_guesses);
  EXPECT_EQ(a.abstained_guesses, b.abstained_guesses);
  EXPECT_EQ(a.perfect_hints, b.perfect_hints);
  EXPECT_EQ(a.approximate_hints, b.approximate_hints);
  EXPECT_EQ(a.sign_only_hints, b.sign_only_hints);
  EXPECT_EQ(a.dropped_hints, b.dropped_hints);
  EXPECT_EQ(a.bikz, b.bikz);  // bit-equal
  EXPECT_EQ(a.bits, b.bits);  // bit-equal
}

void expect_results_identical(const RecoveryCampaignResult& a,
                              const RecoveryCampaignResult& b) {
  ASSERT_EQ(a.captures.size(), b.captures.size());
  for (std::size_t i = 0; i < a.captures.size(); ++i) {
    const auto& sa = a.captures[i].segmentation;
    const auto& sb = b.captures[i].segmentation;
    EXPECT_EQ(sa.status, sb.status);
    EXPECT_EQ(sa.attempts, sb.attempts);
    EXPECT_EQ(sa.burst_consistency, sb.burst_consistency);
    EXPECT_EQ(sa.window_quality, sb.window_quality);
    ASSERT_EQ(a.captures[i].guesses.size(), b.captures[i].guesses.size());
    for (std::size_t g = 0; g < a.captures[i].guesses.size(); ++g) {
      expect_guesses_identical(a.captures[i].guesses[g], b.captures[i].guesses[g]);
    }
  }
  EXPECT_EQ(a.hints, b.hints);  // HintRecord == is defaulted: kind + variance bits
  EXPECT_EQ(a.hint_totals.perfect, b.hint_totals.perfect);
  EXPECT_EQ(a.hint_totals.approximate, b.hint_totals.approximate);
  EXPECT_EQ(a.hint_totals.sign_only, b.hint_totals.sign_only);
  EXPECT_EQ(a.hint_totals.skipped, b.hint_totals.skipped);
  EXPECT_EQ(a.hint_totals.mean_residual_variance, b.hint_totals.mean_residual_variance);
  expect_reports_identical(a.report, b.report);
}

// Trains one gated attack for the whole suite (profiling is clean and
// deterministic; re-training per test would just repeat the same work).
class CampaignEquivalence : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampaignConfig clean;
    clean.n = 64;
    clean.num_workers = 0;
    SamplerCampaign profiler(clean);
    attack_ = new RevealAttack(gated_attack_config());
    attack_->train(profiler.collect_windows(120, /*seed_base=*/1));
  }
  static void TearDownTestSuite() {
    delete attack_;
    attack_ = nullptr;
  }
  static RevealAttack* attack_;
};

RevealAttack* CampaignEquivalence::attack_ = nullptr;

TEST_F(CampaignEquivalence, FullCampaignByteIdenticalAcrossWorkerCounts) {
  const CampaignConfig cfg = degraded_config();
  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const HintPolicy policy;
  const std::uint64_t seed_bases[] = {11, 222, 3333, 44444, 555555};
  constexpr std::size_t kCaptures = 4;

  for (const std::uint64_t base : seed_bases) {
    const std::vector<std::uint64_t> seeds = CampaignRunner::stream_seeds(base, kCaptures);

    CampaignRunner serial(0);
    const RecoveryCampaignResult reference =
        serial.run_recovery_campaign(*attack_, cfg, seeds, policy, params);
    // A campaign that recovered nothing would make the equivalence vacuous.
    ASSERT_GT(reference.report.recovered_windows, 0u) << "base=" << base;

    for (const std::size_t workers : {1u, 4u}) {
      CampaignRunner runner(workers);
      const RecoveryCampaignResult result =
          runner.run_recovery_campaign(*attack_, cfg, seeds, policy, params);
      SCOPED_TRACE("base=" + std::to_string(base) +
                   " workers=" + std::to_string(workers));
      expect_results_identical(reference, result);
    }
  }
}

TEST_F(CampaignEquivalence, DiagnosticsSinkDoesNotChangeAnyOutputByte) {
  // Identity-safety of the observability layer: the instrumented pipeline
  // instantiation (spans + counters + confusion) must produce exactly the
  // outputs of the NullSpanTracer instantiation — for the serial path and
  // for a parallel pool.
  const CampaignConfig cfg = degraded_config();
  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const HintPolicy policy;
  const std::vector<std::uint64_t> seeds = CampaignRunner::stream_seeds(8080, 4);

  CampaignRunner serial(0);
  const RecoveryCampaignResult reference =
      serial.run_recovery_campaign(*attack_, cfg, seeds, policy, params);
  ASSERT_GT(reference.report.recovered_windows, 0u);

  for (const std::size_t workers : {0u, 1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CampaignRunner runner(workers);
    CampaignDiagnostics diag;
    const RecoveryCampaignResult instrumented =
        runner.run_recovery_campaign(*attack_, cfg, seeds, policy, params, &diag);
    expect_results_identical(reference, instrumented);
    // The sink actually collected: every capture was counted and timed.
    EXPECT_EQ(diag.registry.counter_value("capture.count"), seeds.size());
    EXPECT_EQ(diag.tracer.timing(obs::Stage::kCapture).count, seeds.size());
    EXPECT_EQ(diag.tracer.timing(obs::Stage::kEstimation).count, 1u);
  }
}

TEST_F(CampaignEquivalence, DiagnosticsCountersInvariantAcrossWorkerCounts) {
  // Counters, histogram buckets, gauges and confusion tallies are integers
  // (or max-merged) accumulated per worker and merged in worker-index
  // order, so they are worker-count invariant. Span timings are wall-clock
  // observations and are exempt — the comparison goes through a report
  // built without the tracer.
  const CampaignConfig cfg = degraded_config();
  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  const HintPolicy policy;
  const std::vector<std::uint64_t> seeds = CampaignRunner::stream_seeds(4321, 6);

  CampaignRunner serial(0);
  CampaignDiagnostics serial_diag;
  (void)serial.run_recovery_campaign(*attack_, cfg, seeds, policy, params, &serial_diag);
  const obs::DiagnosticsReport reference =
      obs::make_report(serial_diag.registry, nullptr, &serial_diag.confusion);
  ASSERT_FALSE(reference.counters.empty());
  ASSERT_FALSE(reference.confusion.empty());

  for (const std::size_t workers : {1u, 4u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CampaignRunner runner(workers);
    CampaignDiagnostics diag;
    (void)runner.run_recovery_campaign(*attack_, cfg, seeds, policy, params, &diag);
    const obs::DiagnosticsReport report =
        obs::make_report(diag.registry, nullptr, &diag.confusion);
    EXPECT_EQ(report, reference)
        << "report:    " << report.to_json() << "\nreference: " << reference.to_json();
    EXPECT_EQ(diag.confusion, serial_diag.confusion);
    // The full report (with timings) must survive a JSON round trip exactly.
    const obs::DiagnosticsReport full = diag.report();
    EXPECT_EQ(obs::DiagnosticsReport::from_json(full.to_json()), full);
  }
}

TEST_F(CampaignEquivalence, TrainedTemplatesByteIdenticalAcrossWorkerCounts) {
  CampaignConfig clean;
  clean.n = 64;
  clean.num_workers = 0;
  SamplerCampaign profiler(clean);
  const std::vector<WindowRecord> profiling = profiler.collect_windows(80, 1000);

  RevealAttack serial(gated_attack_config());
  serial.train(profiling);

  // Same probe window classified by serially- and parallel-trained attacks
  // must give bit-identical posteriors: training accumulates the pooled
  // covariance in window-index order regardless of the pool.
  const FullCapture probe = profiler.capture(31337);
  ASSERT_EQ(probe.segments.size(), clean.n);
  const std::vector<CoefficientGuess> ref = serial.attack_capture(probe);

  for (const std::size_t workers : {1u, 4u}) {
    WorkerPool pool(workers);
    RevealAttack parallel(gated_attack_config());
    parallel.train(profiling, &pool);
    const std::vector<CoefficientGuess> got = parallel.attack_capture(probe, &pool);
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) expect_guesses_identical(ref[i], got[i]);
  }
}

TEST(CampaignEquivalenceNoFixture, CapturesAreHistoryIndependent) {
  // The engine runs per-worker SamplerCampaign replicas; that is only sound
  // if capture(seed) does not depend on what the campaign captured before.
  CampaignConfig cfg = degraded_config();
  cfg.num_workers = 0;
  SamplerCampaign reused(cfg);
  (void)reused.capture(111);
  (void)reused.capture(222);
  const FullCapture after_history = reused.capture(333);

  SamplerCampaign fresh(cfg);
  const FullCapture pristine = fresh.capture(333);
  EXPECT_EQ(after_history.trace, pristine.trace);  // bit-equal samples
  EXPECT_EQ(after_history.noise, pristine.noise);
  ASSERT_EQ(after_history.segments.size(), pristine.segments.size());
  for (std::size_t i = 0; i < pristine.segments.size(); ++i) {
    EXPECT_EQ(after_history.segments[i].window_begin, pristine.segments[i].window_begin);
    EXPECT_EQ(after_history.segments[i].window_end, pristine.segments[i].window_end);
  }
}

TEST(CampaignEquivalenceNoFixture, CollectWindowsMatchesSerialBitExactly) {
  CampaignConfig cfg = degraded_config();
  cfg.num_workers = 0;
  SamplerCampaign serial_campaign(cfg);
  std::size_t serial_rejected = 0;
  const std::vector<WindowRecord> reference =
      serial_campaign.collect_windows(30, /*seed_base=*/500, &serial_rejected);

  for (const std::size_t workers : {1u, 4u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CampaignConfig pcfg = cfg;
    pcfg.num_workers = workers;
    SamplerCampaign parallel_campaign(pcfg);
    std::size_t rejected = 0;
    const std::vector<WindowRecord> got =
        parallel_campaign.collect_windows(30, /*seed_base=*/500, &rejected);
    EXPECT_EQ(rejected, serial_rejected);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(got[i].samples, reference[i].samples);  // bit-equal
      EXPECT_EQ(got[i].true_value, reference[i].true_value);
    }
  }
}

TEST(CampaignEquivalenceNoFixture, StreamSeedsMatchCounterSplit) {
  const std::vector<std::uint64_t> seeds = CampaignRunner::stream_seeds(987, 32);
  ASSERT_EQ(seeds.size(), 32u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], stream_seed(987, i));
  }
}

}  // namespace
