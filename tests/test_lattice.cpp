// Lattice reduction tests: GSO invariants, LLL properties (parameterized
// random bases), enumeration vs. brute force, and BKZ improvement.

#include <gtest/gtest.h>

#include <cmath>

#include "lattice/lattice.hpp"
#include "numeric/rng.hpp"

using namespace reveal::lattice;

namespace {

Basis random_basis(std::size_t n, std::int64_t magnitude,
                   reveal::num::Xoshiro256StarStar& rng) {
  // Triangular-dominant construction guarantees full rank.
  Basis basis(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      basis[i][j] = rng.uniform_int(-magnitude, magnitude);
    }
    basis[i][i] += 3 * magnitude;  // dominance
  }
  return basis;
}

/// Brute-force shortest nonzero vector by coefficient enumeration in
/// [-bound, bound]^n (tiny n only).
long double brute_force_shortest(const Basis& basis, std::int64_t bound) {
  const std::size_t n = basis.size();
  std::vector<std::int64_t> coeff(n, -bound);
  long double best = 1e300L;
  for (;;) {
    bool nonzero = false;
    for (const auto c : coeff) {
      if (c != 0) nonzero = true;
    }
    if (nonzero) {
      std::vector<std::int64_t> v(basis[0].size(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < v.size(); ++j) v[j] += coeff[i] * basis[i][j];
      }
      const long double ns = norm_sq(v);
      if (ns > 0 && ns < best) best = ns;
    }
    std::size_t k = 0;
    while (k < n && coeff[k] == bound) coeff[k++] = -bound;
    if (k == n) break;
    ++coeff[k];
  }
  return best;
}

}  // namespace

TEST(Gso, OrthogonalityAndNorms) {
  // b1 = (3,0), b2 = (1,2): b2* = (0,2).
  const Basis basis = {{3, 0}, {1, 2}};
  const Gso gso = compute_gso(basis);
  EXPECT_NEAR(static_cast<double>(gso.norms_sq[0]), 9.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(gso.norms_sq[1]), 4.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(gso.mu[1][0]), 1.0 / 3.0, 1e-9);
}

TEST(Gso, ProductOfNormsIsDeterminantSquared) {
  // det of {{2,0},{0,5}} is 10; prod ||b*||^2 = 100.
  const Basis basis = {{2, 0}, {0, 5}};
  const Gso gso = compute_gso(basis);
  EXPECT_NEAR(static_cast<double>(gso.norms_sq[0] * gso.norms_sq[1]), 100.0, 1e-9);
}

TEST(Lll, ClassicExample) {
  // The textbook example: LLL must shorten this basis.
  Basis basis = {{1, 1, 1}, {-1, 0, 2}, {3, 5, 6}};
  lll_reduce(basis);
  EXPECT_TRUE(is_lll_reduced(basis));
  EXPECT_LE(norm_sq(shortest_row(basis)), 3.0L);
}

TEST(Lll, RejectsBadDelta) {
  Basis basis = {{1, 0}, {0, 1}};
  EXPECT_THROW(lll_reduce(basis, {0.1}), std::invalid_argument);
  EXPECT_THROW(lll_reduce(basis, {1.5}), std::invalid_argument);
}

TEST(Lll, RaggedBasisRejected) {
  Basis basis = {{1, 0}, {0}};
  EXPECT_THROW(lll_reduce(basis), std::invalid_argument);
  EXPECT_THROW(compute_gso(Basis{}), std::invalid_argument);
}

class LllProperty : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(LllProperty, OutputIsReducedAndSameLattice) {
  const auto [n, seed] = GetParam();
  reveal::num::Xoshiro256StarStar rng(seed);
  Basis basis = random_basis(n, 50, rng);
  const Gso before = compute_gso(basis);
  // Lattice volume = prod ||b*_i|| is invariant under LLL.
  long double log_vol_before = 0.0L;
  for (const auto v : before.norms_sq) log_vol_before += 0.5L * std::log(static_cast<double>(v));

  lll_reduce(basis);
  EXPECT_TRUE(is_lll_reduced(basis)) << "n=" << n << " seed=" << seed;

  const Gso after = compute_gso(basis);
  long double log_vol_after = 0.0L;
  for (const auto v : after.norms_sq) log_vol_after += 0.5L * std::log(static_cast<double>(v));
  EXPECT_NEAR(static_cast<double>(log_vol_before), static_cast<double>(log_vol_after), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomBases, LllProperty,
                         ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4},
                                                              std::size_t{8}, std::size_t{12}),
                                            ::testing::Values(1u, 2u, 3u)));

TEST(Enumeration, MatchesBruteForceOnTinyLattices) {
  reveal::num::Xoshiro256StarStar rng(2026);
  for (int rep = 0; rep < 10; ++rep) {
    Basis basis = random_basis(3, 6, rng);
    lll_reduce(basis);
    const Gso gso = compute_gso(basis);
    const EnumResult res = enumerate_shortest(gso, 0, basis.size(),
                                              gso.norms_sq[0] * 4.0L);
    ASSERT_TRUE(res.found);
    const long double brute = brute_force_shortest(basis, 3);
    EXPECT_NEAR(static_cast<double>(res.norm_sq), static_cast<double>(brute), 1e-6)
        << "rep " << rep;
  }
}

TEST(Enumeration, RespectsRadius) {
  const Basis basis = {{5, 0}, {0, 7}};
  const Gso gso = compute_gso(basis);
  // Radius below the shortest vector: nothing found.
  const EnumResult res = enumerate_shortest(gso, 0, 2, 24.0L);
  EXPECT_FALSE(res.found);
  // Radius 26 captures (5, 0).
  const EnumResult res2 = enumerate_shortest(gso, 0, 2, 26.0L);
  ASSERT_TRUE(res2.found);
  EXPECT_NEAR(static_cast<double>(res2.norm_sq), 25.0, 1e-9);
}

TEST(Enumeration, BadBoundsThrow) {
  const Basis basis = {{1, 0}, {0, 1}};
  const Gso gso = compute_gso(basis);
  EXPECT_THROW(enumerate_shortest(gso, 1, 1), std::invalid_argument);
  EXPECT_THROW(enumerate_shortest(gso, 0, 3), std::invalid_argument);
}

TEST(Bkz, AtLeastAsGoodAsLll) {
  reveal::num::Xoshiro256StarStar rng(31337);
  for (int rep = 0; rep < 3; ++rep) {
    Basis lll_basis = random_basis(12, 40, rng);
    Basis bkz_basis = lll_basis;
    lll_reduce(lll_basis);
    BkzParams params;
    params.block_size = 6;
    params.max_tours = 8;
    bkz_reduce(bkz_basis, params);
    EXPECT_EQ(bkz_basis.size(), lll_basis.size());  // dependency removal is clean
    EXPECT_LE(static_cast<double>(norm_sq(shortest_row(bkz_basis))),
              static_cast<double>(norm_sq(shortest_row(lll_basis))) + 1e-6);
    EXPECT_TRUE(is_lll_reduced(bkz_basis, 0.99, 1e-4));
  }
}

TEST(Bkz, FullBlockFindsShortestVector) {
  // With block_size = n, BKZ's first projected block is the whole lattice:
  // b1 becomes a shortest vector.
  reveal::num::Xoshiro256StarStar rng(5150);
  Basis basis = random_basis(6, 10, rng);
  Basis copy = basis;
  BkzParams params;
  params.block_size = 6;
  params.max_tours = 10;
  bkz_reduce(basis, params);
  const long double found = norm_sq(basis[0]);
  // Verify against enumeration over the LLL-reduced copy.
  lll_reduce(copy);
  const Gso gso = compute_gso(copy);
  const EnumResult best = enumerate_shortest(gso, 0, 6, gso.norms_sq[0] * 2.0L);
  const long double reference =
      best.found ? best.norm_sq : gso.norms_sq[0];
  EXPECT_NEAR(static_cast<double>(found), static_cast<double>(reference), 1e-6);
}

TEST(Bkz, ParameterValidation) {
  Basis basis = {{1, 0}, {0, 1}};
  BkzParams params;
  params.block_size = 1;
  EXPECT_THROW(bkz_reduce(basis, params), std::invalid_argument);
}

TEST(Babai, RecoversCloseLatticePoint) {
  reveal::num::Xoshiro256StarStar rng(777);
  for (int rep = 0; rep < 5; ++rep) {
    Basis basis = random_basis(6, 20, rng);
    lll_reduce(basis);
    // Plant: lattice point + small error.
    std::vector<std::int64_t> point(6, 0);
    for (std::size_t i = 0; i < basis.size(); ++i) {
      const std::int64_t c = rng.uniform_int(-3, 3);
      for (std::size_t j = 0; j < 6; ++j) point[j] += c * basis[i][j];
    }
    std::vector<std::int64_t> target = point;
    for (auto& v : target) v += rng.uniform_int(-2, 2);
    const auto found = babai_nearest_plane(basis, target);
    EXPECT_EQ(found, point) << "rep " << rep;
  }
}

TEST(Babai, ExactLatticePointIsFixed) {
  const Basis basis = {{7, 0}, {3, 5}};
  const std::vector<std::int64_t> point = {10, 5};  // 1*b1 + 1*b2
  EXPECT_EQ(babai_nearest_plane(basis, point), point);
}

TEST(Babai, DimensionMismatchThrows) {
  const Basis basis = {{1, 0}, {0, 1}};
  EXPECT_THROW(babai_nearest_plane(basis, {1, 2, 3}), std::invalid_argument);
}

TEST(Lll, HermiteFactorOnQaryLattices) {
  // LLL's root Hermite factor on random q-ary lattices is ~1.02 — the
  // constant the DBDD estimator's small-beta interpolation is anchored to.
  reveal::num::Xoshiro256StarStar rng(808);
  const std::int64_t q = 1009;
  const std::size_t m = 12, k = 6, d = m;  // q-ary: [qI_k 0; A I_{m-k}]
  double sum_rhf = 0.0;
  int trials = 0;
  for (int rep = 0; rep < 5; ++rep) {
    Basis basis(d, std::vector<std::int64_t>(d, 0));
    for (std::size_t i = 0; i < k; ++i) basis[i][i] = q;
    for (std::size_t i = k; i < d; ++i) {
      for (std::size_t j = 0; j < k; ++j) basis[i][j] = rng.uniform_int(0, q - 1);
      basis[i][i] = 1;
    }
    lll_reduce(basis);
    const double shortest = std::sqrt(static_cast<double>(norm_sq(shortest_row(basis))));
    // det = q^k; rhf = (shortest / det^(1/d))^(1/d).
    const double det_root = std::pow(static_cast<double>(q),
                                     static_cast<double>(k) / static_cast<double>(d));
    const double rhf = std::pow(shortest / det_root, 1.0 / static_cast<double>(d));
    sum_rhf += rhf;
    ++trials;
  }
  const double mean_rhf = sum_rhf / trials;
  EXPECT_GT(mean_rhf, 0.95);  // can beat the GSA prediction at tiny dims
  EXPECT_LT(mean_rhf, 1.06);  // but must stay near the LLL regime
}

TEST(Bkz, QaryLatticeShortVector) {
  // BKZ on a q-ary lattice must find a vector noticeably shorter than the
  // trivial q-vectors.
  reveal::num::Xoshiro256StarStar rng(909);
  const std::int64_t q = 1009;
  const std::size_t m = 14, k = 7;
  Basis basis(m, std::vector<std::int64_t>(m, 0));
  for (std::size_t i = 0; i < k; ++i) basis[i][i] = q;
  for (std::size_t i = k; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) basis[i][j] = rng.uniform_int(0, q - 1);
    basis[i][i] = 1;
  }
  BkzParams params;
  params.block_size = 8;
  params.max_tours = 8;
  bkz_reduce(basis, params);
  const double shortest = std::sqrt(static_cast<double>(norm_sq(shortest_row(basis))));
  EXPECT_LT(shortest, static_cast<double>(q) / 4.0);
}
