// Power model, trace recorder and scope front-end tests.

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/stats.hpp"
#include "power/leakage_model.hpp"
#include "power/scope.hpp"
#include "power/trace_recorder.hpp"
#include "riscv/assembler.hpp"
#include "riscv/machine.hpp"

using namespace reveal;
using namespace reveal::riscv;

namespace {

power::LeakageParams quiet_params() {
  power::LeakageParams p;
  p.noise_sigma = 0.0;
  return p;
}

InstrEvent make_alu_event(std::uint32_t rd_old, std::uint32_t rd_new, std::uint32_t cycles = 3) {
  InstrEvent e;
  e.klass = InstrClass::kAlu;
  e.op = Op::kAdd;
  e.rd_written = true;
  e.rd_old = rd_old;
  e.rd_new = rd_new;
  e.cycles = cycles;
  return e;
}

}  // namespace

TEST(LeakageModel, WeightedHwNearHw) {
  const power::LeakageModel model(quiet_params());
  EXPECT_EQ(model.weighted_hw(0), 0.0);
  // Deviations are bounded by +-bit_deviation per bit.
  const double whw = model.weighted_hw(0xFFFFFFFFu);
  EXPECT_NEAR(whw, 32.0, 32.0 * 0.08 + 1e-12);
  EXPECT_GT(model.weighted_hw(0b111), model.weighted_hw(0b1));
}

TEST(LeakageModel, WeightedHwDistinguishesEqualHwValues) {
  // HW(1) == HW(2) but the weighted versions must differ (per-bit spread) —
  // this is what lets the template attack split values within an HW class.
  const power::LeakageModel model(quiet_params());
  EXPECT_NE(model.weighted_hw(1), model.weighted_hw(2));
}

TEST(LeakageModel, ExecutePowerReflectsData) {
  const power::LeakageModel model(quiet_params());
  const double p_small = model.execute_cycle_power(make_alu_event(0, 1));
  const double p_large = model.execute_cycle_power(make_alu_event(0, 0xFFFFFFFFu));
  EXPECT_GT(p_large, p_small + 3.0);  // ~ (w_hd + w_hw) * 31 more
}

TEST(LeakageModel, SampleCountEqualsCycles) {
  const power::LeakageModel model(quiet_params());
  num::Xoshiro256StarStar rng(1);
  std::vector<double> out;
  model.append_samples(make_alu_event(0, 3, 7), rng, out);
  EXPECT_EQ(out.size(), 7u);
  // Only the final (execute) cycle carries the data component.
  for (std::size_t i = 0; i + 1 < out.size(); ++i) {
    EXPECT_NEAR(out[i], model.base_power(InstrClass::kAlu), 1e-12);
  }
  EXPECT_GT(out.back(), out.front());
}

TEST(LeakageModel, NoiseIsDeterministicPerSeed) {
  power::LeakageParams p;
  p.noise_sigma = 0.5;
  const power::LeakageModel model(p);
  std::vector<double> t1, t2;
  num::Xoshiro256StarStar r1(99), r2(99);
  model.append_samples(make_alu_event(0, 5), r1, t1);
  model.append_samples(make_alu_event(0, 5), r2, t2);
  EXPECT_EQ(t1, t2);
}

TEST(LeakageModel, BaseLevelsOrdered) {
  const power::LeakageModel model(quiet_params());
  // Memory and multiplier activity dominates plain ALU activity.
  EXPECT_GT(model.base_power(InstrClass::kMul), model.base_power(InstrClass::kStore));
  EXPECT_GT(model.base_power(InstrClass::kStore), model.base_power(InstrClass::kAlu));
}

TEST(TraceRecorder, RecordsFullProgramPower) {
  Assembler as;
  as.li(a0, 0x55);
  as.li(s0, 0x300);
  as.sw(a0, 0, s0);
  as.ebreak();
  Machine m(4096);
  m.load_program(as.assemble());

  const power::LeakageModel model(quiet_params());
  power::TraceRecorder recorder(model, 7);
  ASSERT_EQ(m.run(100, &recorder), Machine::StopReason::kHalt);
  EXPECT_EQ(recorder.samples().size(), m.cycle_count());
}

TEST(TraceRecorder, MarkersFireAtWatchedPc) {
  Assembler as;
  as.li(t0, 3);
  as.label("loop");          // pc = 4
  as.addi(t0, t0, -1);
  as.bnez(t0, "loop");
  as.ebreak();
  Machine m(4096);
  const auto words = as.assemble();
  m.load_program(words);

  const power::LeakageModel model(quiet_params());
  power::TraceRecorder recorder(model, 1);
  recorder.watch_pc(4, 100, /*increment=*/true);
  ASSERT_EQ(m.run(100, &recorder), Machine::StopReason::kHalt);
  ASSERT_EQ(recorder.markers().size(), 3u);  // loop body runs 3 times
  EXPECT_EQ(recorder.markers()[0].tag, 100u);
  EXPECT_EQ(recorder.markers()[2].tag, 102u);
  EXPECT_LT(recorder.markers()[0].sample_index, recorder.markers()[1].sample_index);
}

TEST(TraceRecorder, ClearResets) {
  const power::LeakageModel model(quiet_params());
  power::TraceRecorder recorder(model, 1);
  std::vector<double> dummy;
  recorder.on_instruction(make_alu_event(0, 1));
  EXPECT_FALSE(recorder.samples().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.samples().empty());
}

TEST(TraceRecorder, TakeSamplesLeavesRecorderReusable) {
  // Regression: take_samples() used to only move the buffer out, leaving
  // the markers of the taken capture and a mid-walk drift value behind to
  // contaminate the next recording.
  power::LeakageParams p;
  p.noise_sigma = 0.2;
  p.drift_sigma = 0.05;  // exercises the drift random walk
  const power::LeakageModel model(p);
  power::TraceRecorder recorder(model, 9);
  recorder.watch_pc(0, 5);
  recorder.on_instruction(make_alu_event(0, 1));
  const std::vector<double> first = recorder.take_samples();
  EXPECT_FALSE(first.empty());
  EXPECT_TRUE(recorder.samples().empty());
  EXPECT_TRUE(recorder.markers().empty());  // stale markers are gone

  // Rearming with the same seed must reproduce the first capture
  // bit-for-bit (drift restarts at zero, noise stream reseeded, the
  // auto-increment watch tag rewinds).
  recorder.begin_capture(9);
  recorder.on_instruction(make_alu_event(0, 1));
  EXPECT_EQ(recorder.samples(), first);
  ASSERT_EQ(recorder.markers().size(), 1u);
  EXPECT_EQ(recorder.markers()[0].tag, 5u);
}

TEST(TraceRecorder, ReusedRecorderMatchesFreshRecorder) {
  power::LeakageParams p;
  p.noise_sigma = 0.3;
  p.drift_sigma = 0.02;
  const power::LeakageModel model(p);

  power::TraceRecorder reused(model, 1);
  for (std::uint64_t seed = 2; seed <= 4; ++seed) {
    power::TraceRecorder fresh(model, seed);
    reused.begin_capture(seed);
    for (int i = 0; i < 16; ++i) {
      fresh.on_instruction(make_alu_event(static_cast<std::uint32_t>(i), 1));
      reused.on_instruction(make_alu_event(static_cast<std::uint32_t>(i), 1));
    }
    EXPECT_EQ(reused.samples(), fresh.samples()) << "seed " << seed;
    (void)reused.take_samples();
  }
}

TEST(Scope, GainAndOffset) {
  power::ScopeParams sp;
  sp.gain = 2.0;
  sp.offset = 1.0;
  const auto out = power::acquire({1.0, 2.0, 3.0}, sp);
  EXPECT_EQ(out, (std::vector<double>{3.0, 5.0, 7.0}));
}

TEST(Scope, Decimation) {
  power::ScopeParams sp;
  sp.decimation = 2;
  const auto out = power::acquire({1, 2, 3, 4, 5}, sp);
  EXPECT_EQ(out, (std::vector<double>{1, 3, 5}));
}

TEST(Scope, MovingAverageSmooths) {
  power::ScopeParams sp;
  sp.bandwidth_window = 2;
  const auto out = power::acquire({0, 10, 0, 10}, sp);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_NEAR(out[0], 0.0, 1e-12);
  EXPECT_NEAR(out[1], 5.0, 1e-12);
  EXPECT_NEAR(out[2], 5.0, 1e-12);
}

TEST(Scope, Quantization8Bit) {
  power::ScopeParams sp;
  sp.quantize_8bit = true;
  sp.range_lo = 0.0;
  sp.range_hi = 255.0;
  const auto out = power::acquire({1.4, 100.6, 300.0, -5.0}, sp);
  EXPECT_NEAR(out[0], 1.0, 1e-9);
  EXPECT_NEAR(out[1], 101.0, 1e-9);
  EXPECT_NEAR(out[2], 255.0, 1e-9);  // clipped high
  EXPECT_NEAR(out[3], 0.0, 1e-9);    // clipped low
}

TEST(Scope, QuantizeSampleClampsAtBothRails) {
  // Out-of-range inputs must clip to the rails — including with a
  // negative range floor — never wrap or extrapolate codes.
  EXPECT_NEAR(power::quantize_8bit_sample(-100.0, -2.0, 2.0), -2.0, 1e-12);
  EXPECT_NEAR(power::quantize_8bit_sample(100.0, -2.0, 2.0), 2.0, 1e-12);
  EXPECT_NEAR(power::quantize_8bit_sample(-2.0, -2.0, 2.0), -2.0, 1e-12);
  EXPECT_NEAR(power::quantize_8bit_sample(2.0, -2.0, 2.0), 2.0, 1e-12);
  // In-range values snap to the nearest of 256 codes (half-code error max).
  const double half_code = 0.5 * 4.0 / 255.0;
  EXPECT_NEAR(power::quantize_8bit_sample(0.3, -2.0, 2.0), 0.3, half_code + 1e-12);
  EXPECT_THROW((void)power::quantize_8bit_sample(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Scope, QuantizationClampsNegativeRangeInAcquire) {
  power::ScopeParams sp;
  sp.quantize_8bit = true;
  sp.range_lo = -2.0;
  sp.range_hi = 2.0;
  const auto out = power::acquire({-3.0, -2.0, 0.0, 2.0, 3.0}, sp);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_NEAR(out[0], -2.0, 1e-12);  // clipped low rail
  EXPECT_NEAR(out[1], -2.0, 1e-12);
  EXPECT_NEAR(out[2], 0.0, 0.5 * 4.0 / 255.0 + 1e-12);
  EXPECT_NEAR(out[3], 2.0, 1e-12);
  EXPECT_NEAR(out[4], 2.0, 1e-12);  // clipped high rail
}

TEST(Scope, QuantizeCodeTopOfRangeIsCode255NotWrapped) {
  // The silent-saturation regression: range_hi must convert to code 255
  // exactly. A conversion that scaled past 255.0 and cast to uint8 would
  // wrap 256 to code 0 — the top rail would read as the bottom rail.
  bool clipped = true;
  EXPECT_EQ(power::quantize_8bit_code(64.0, 0.0, 64.0, &clipped), 255);
  EXPECT_FALSE(clipped);  // hi is in range, not a rail hit
  EXPECT_EQ(power::quantize_8bit_code(0.0, 0.0, 64.0, &clipped), 0);
  EXPECT_FALSE(clipped);
  // The last ulp below hi still snaps up to 255, never past it.
  const double just_below = std::nextafter(64.0, 0.0);
  EXPECT_EQ(power::quantize_8bit_code(just_below, 0.0, 64.0), 255);
  // Asymmetric/negative ranges hit both rails at the extreme codes too.
  EXPECT_EQ(power::quantize_8bit_code(2.0, -2.0, 2.0), 255);
  EXPECT_EQ(power::quantize_8bit_code(-2.0, -2.0, 2.0), 0);
  EXPECT_THROW((void)power::quantize_8bit_code(0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(Scope, QuantizeCodeReportsRailHits) {
  bool clipped = false;
  EXPECT_EQ(power::quantize_8bit_code(1e9, 0.0, 64.0, &clipped), 255);
  EXPECT_TRUE(clipped);
  clipped = false;
  EXPECT_EQ(power::quantize_8bit_code(-1e9, 0.0, 64.0, &clipped), 0);
  EXPECT_TRUE(clipped);
  // Reconstruction of the code equals the legacy sample quantizer: one
  // conversion path, two views.
  for (const double v : {-5.0, 0.0, 13.37, 63.9, 64.0, 300.0}) {
    const std::uint8_t code = power::quantize_8bit_code(v, 0.0, 64.0);
    const double reconstructed = 0.0 + static_cast<double>(code) / 255.0 * 64.0;
    EXPECT_EQ(reconstructed, power::quantize_8bit_sample(v, 0.0, 64.0)) << "v=" << v;
  }
}

TEST(Scope, AcquireCountsClippedSamples) {
  power::ScopeParams sp;
  sp.quantize_8bit = true;
  sp.range_lo = 0.0;
  sp.range_hi = 64.0;
  std::size_t clipped = 999;
  const auto out = power::acquire({-1.0, 10.0, 64.0, 100.0, 32.0}, sp, &clipped);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(clipped, 2u);  // -1.0 (low rail) and 100.0 (high rail); 64.0 is in range
  // Without quantization the counter must reset to zero, not keep its old
  // value.
  power::ScopeParams splain;
  clipped = 999;
  (void)power::acquire({1e9, -1e9}, splain, &clipped);
  EXPECT_EQ(clipped, 0u);
}

TEST(Scope, RejectsBadParams) {
  power::ScopeParams sp;
  sp.decimation = 0;
  EXPECT_THROW(power::acquire({1.0}, sp), std::invalid_argument);
  power::ScopeParams sq;
  sq.quantize_8bit = true;
  sq.range_lo = 1.0;
  sq.range_hi = 1.0;
  EXPECT_THROW(power::acquire({1.0}, sq), std::invalid_argument);
}

TEST(Scope, QuantizationPreservesLeakageOrdering) {
  // End-to-end sanity: the acquisition chain must not destroy the
  // value-dependent ordering the attack relies on.
  const power::LeakageModel model(quiet_params());
  const double p1 = model.execute_cycle_power(make_alu_event(0, 0x0F));
  const double p2 = model.execute_cycle_power(make_alu_event(0, 0xFF));
  power::ScopeParams sp;
  sp.quantize_8bit = true;
  sp.range_lo = 0.0;
  sp.range_hi = 64.0;
  const auto out = power::acquire({p1, p2}, sp);
  EXPECT_LT(out[0], out[1]);
}

TEST(Drift, RandomWalkAccumulates) {
  power::LeakageParams p;
  p.noise_sigma = 0.0;
  p.drift_sigma = 0.05;
  const power::LeakageModel model(p);
  power::TraceRecorder recorder(model, 42);
  for (int i = 0; i < 500; ++i) recorder.on_instruction(make_alu_event(0, 0));
  // With zero scope noise the samples are base + drift: the wander must be
  // visible (nonzero spread) and continuous (bounded per-step increments).
  const auto& s = recorder.samples();
  double lo = s[0], hi = s[0];
  for (const double v : s) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi - lo, 0.2);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_LT(std::abs(s[i] - s[i - 1]), 1.0);  // no jumps
  }
  recorder.clear();
  recorder.on_instruction(make_alu_event(0, 0));
  // clear() resets the wander: first sample returns near the base level.
  EXPECT_NEAR(recorder.samples().front(), model.base_power(InstrClass::kAlu), 0.2);
}
