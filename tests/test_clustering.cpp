// k-means clustering tests: synthetic separation plus the unsupervised
// (non-profiled) sign recovery the branch leak enables.

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.hpp"
#include "numeric/rng.hpp"
#include "sca/clustering.hpp"

using namespace reveal;
using namespace reveal::sca;

TEST(KMeans, SeparatesSyntheticBlobs) {
  num::Xoshiro256StarStar rng(1);
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  const double centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      points.push_back({centers[c][0] + rng.gaussian(), centers[c][1] + rng.gaussian()});
      labels.push_back(c);
    }
  }
  const KMeansResult result = kmeans(points, 3, 50, 7);
  EXPECT_NEAR(cluster_purity(result.assignment, labels), 1.0, 0.02);
  EXPECT_LT(result.iterations, 50u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  num::Xoshiro256StarStar rng(2);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 200; ++i) points.push_back({rng.gaussian(), rng.gaussian()});
  const double inertia2 = kmeans(points, 2, 50, 3).inertia;
  const double inertia8 = kmeans(points, 8, 50, 3).inertia;
  EXPECT_LT(inertia8, inertia2);
}

TEST(KMeans, Validation) {
  EXPECT_THROW(kmeans({}, 1), std::invalid_argument);
  EXPECT_THROW(kmeans({{1.0}}, 2), std::invalid_argument);
  EXPECT_THROW(kmeans({{1.0}, {1.0, 2.0}}, 1), std::invalid_argument);
  EXPECT_THROW(cluster_purity({0}, {}), std::invalid_argument);
}

TEST(KMeans, UnsupervisedSignRecoveryFromWindows) {
  // No profiling device at all: cluster the sign-region prefixes of one
  // campaign's windows into 3 groups — the branch patterns separate so well
  // that the clusters ARE the signs (purity ~1). An attacker can label the
  // clusters afterwards from their relative sizes (zero ~12.4%, +/- ~43.8%)
  // and the distribution symmetry.
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  std::vector<std::vector<double>> points;
  std::vector<int> labels;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto windows = core::windows_from_capture(cap);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (windows[i].samples.size() < 60) continue;
      points.emplace_back(windows[i].samples.begin(), windows[i].samples.begin() + 60);
      labels.push_back(cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0));
    }
  }
  ASSERT_GT(points.size(), 500u);
  // Per-feature z-normalization (no labels needed) before clustering.
  const std::size_t dim = points.front().size();
  for (std::size_t f = 0; f < dim; ++f) {
    double mean = 0.0;
    for (const auto& p : points) mean += p[f];
    mean /= static_cast<double>(points.size());
    double var = 0.0;
    for (const auto& p : points) var += (p[f] - mean) * (p[f] - mean);
    const double sd = std::sqrt(var / static_cast<double>(points.size()));
    if (sd == 0.0) continue;
    for (auto& p : points) p[f] = (p[f] - mean) / sd;
  }
  // k > 3: value-dependent sub-structure may split a sign into several
  // clusters, but every cluster must remain sign-PURE (the attacker merges
  // clusters afterwards; what matters is that no cluster mixes signs).
  const KMeansResult result = kmeans(points, 8, 80, 11);
  EXPECT_GT(cluster_purity(result.assignment, labels), 0.97);
}
