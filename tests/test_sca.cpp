// SCA toolkit tests: traces, segmentation, POI selection, templates,
// branch classification and confusion reports — all on synthetic data with
// known ground truth.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "numeric/rng.hpp"
#include "sca/classifier.hpp"
#include "sca/poi.hpp"
#include "sca/report.hpp"
#include "sca/segmentation.hpp"
#include "sca/template_attack.hpp"
#include "sca/trace.hpp"

using namespace reveal;
using namespace reveal::sca;

TEST(TraceSet, SaveLoadRoundtrip) {
  TraceSet set;
  Trace t1;
  t1.samples = {1.5, -2.5, 3.25};
  t1.label = 7;
  set.add(t1);
  Trace t2;
  t2.samples = {0.0};
  set.add(t2);

  const std::string path = std::filesystem::temp_directory_path() / "reveal_traces.bin";
  set.save(path);
  const TraceSet loaded = TraceSet::load(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].samples, t1.samples);
  EXPECT_EQ(loaded[0].label, 7);
  EXPECT_EQ(loaded[1].label, Trace::kNoLabel);
  std::remove(path.c_str());
}

TEST(TraceSet, LoadRejectsGarbage) {
  const std::string path = std::filesystem::temp_directory_path() / "reveal_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("not a trace file", f);
    std::fclose(f);
  }
  EXPECT_THROW(TraceSet::load(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(TraceSet::load("/nonexistent/nope.bin"), std::runtime_error);
}

TEST(TraceSet, LoadRejectsTruncatedFiles) {
  // A valid two-trace file cut off at various byte offsets must always
  // throw — never silently yield a shorter/empty set.
  TraceSet set;
  set.add({{1.0, 2.0, 3.0}, 4});
  set.add({{4.0, 5.0}, -1});
  const std::string path = std::filesystem::temp_directory_path() / "reveal_trunc.bin";
  set.save(path);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 20u);
  // magic only; mid trace-count; mid first header; mid samples; last byte gone.
  for (const std::size_t cut : {std::size_t{4}, std::size_t{8}, std::size_t{14},
                                std::size_t{30}, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_THROW(TraceSet::load(path), std::runtime_error) << "cut=" << cut;
  }
  std::remove(path.c_str());
}

TEST(TraceSet, LoadRejectsLyingTraceCount) {
  // Header claims three traces but the file holds one: the missing traces
  // must be reported as truncation, not returned as a short set.
  TraceSet set;
  set.add({{1.0}, 0});
  const std::string path = std::filesystem::temp_directory_path() / "reveal_lying.bin";
  set.save(path);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const std::uint64_t lying_count = 3;
  std::memcpy(bytes.data() + 4, &lying_count, sizeof(lying_count));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(TraceSet::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(TraceOps, Normalize) {
  Trace t;
  t.samples = {1.0, 2.0, 3.0};
  normalize(t);
  double mean = 0.0;
  for (const double v : t.samples) mean += v;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  // Constant trace untouched.
  Trace c;
  c.samples = {5.0, 5.0};
  normalize(c);
  EXPECT_EQ(c.samples, (std::vector<double>{5.0, 5.0}));
}

TEST(TraceOps, MeanTrace) {
  TraceSet set;
  set.add({{1.0, 3.0}, 0});
  set.add({{3.0, 5.0, 7.0}, 0});  // longer: truncated to common length
  const auto mean = mean_trace(set);
  ASSERT_EQ(mean.size(), 2u);
  EXPECT_NEAR(mean[0], 2.0, 1e-12);
  EXPECT_NEAR(mean[1], 4.0, 1e-12);
  EXPECT_THROW(mean_trace(TraceSet{}), std::invalid_argument);
}

TEST(Segmentation, SmoothAndThreshold) {
  const std::vector<double> flat(100, 1.0);
  EXPECT_EQ(smooth(flat, 5), flat);
  EXPECT_THROW(smooth(flat, 0), std::invalid_argument);
  EXPECT_THROW((void)auto_threshold({}), std::invalid_argument);
}

TEST(Segmentation, FindsBurstsInSyntheticTrace) {
  // Three 30-sample bursts at level 10 over a level-1 floor.
  std::vector<double> trace(400, 1.0);
  const std::size_t starts[] = {50, 170, 300};
  for (const std::size_t s : starts) {
    for (std::size_t i = s; i < s + 30; ++i) trace[i] = 10.0;
  }
  SegmentationConfig cfg;
  cfg.smooth_window = 3;
  cfg.threshold = 5.0;
  cfg.min_burst_length = 16;
  const auto segments = segment_trace(trace, cfg);
  ASSERT_EQ(segments.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(static_cast<double>(segments[k].burst_begin),
                static_cast<double>(starts[k]), 4.0);
    EXPECT_GE(segments[k].window_begin, segments[k].burst_end);
  }
  // Windows tile the space between bursts.
  EXPECT_EQ(segments[0].window_end, segments[1].burst_begin);
  EXPECT_EQ(segments[2].window_end, trace.size());
}

TEST(Segmentation, ShortSpikesIgnored) {
  std::vector<double> trace(200, 1.0);
  trace[100] = 50.0;  // single-sample glitch
  SegmentationConfig cfg;
  cfg.smooth_window = 1;
  cfg.threshold = 5.0;
  cfg.min_burst_length = 8;
  EXPECT_TRUE(segment_trace(trace, cfg).empty());
}

TEST(Segmentation, AutoThresholdSeparatesBimodal) {
  std::vector<double> trace;
  for (int i = 0; i < 300; ++i) trace.push_back(1.0);
  for (int i = 0; i < 40; ++i) trace.push_back(10.0);
  const double th = auto_threshold(trace);
  EXPECT_GT(th, 1.5);
  EXPECT_LT(th, 9.5);
}

TEST(Segmentation, FlatTraceHasNoThresholdAndNoBursts) {
  // Degenerate input: no burst/floor separation exists. auto_threshold
  // signals that with +infinity and segmentation finds nothing.
  const std::vector<double> flat(500, 3.0);
  EXPECT_TRUE(std::isinf(auto_threshold(flat)));
  SegmentationConfig cfg;
  cfg.threshold = 0.0;  // automatic
  EXPECT_TRUE(segment_trace(flat, cfg).empty());
}

TEST(Segmentation, NearConstantTraceYieldsNoBogusBurst) {
  // Regression: with the 20th/95th-percentile midpoint collapsed into the
  // numerical-noise band, half of a near-constant trace used to come back
  // as one giant bogus burst.
  std::vector<double> trace(500, 3.0);
  for (std::size_t i = 250; i < trace.size(); ++i) trace[i] += 1e-12;
  SegmentationConfig cfg;
  cfg.threshold = 0.0;
  cfg.smooth_window = 1;
  cfg.min_burst_length = 16;
  EXPECT_TRUE(segment_trace(trace, cfg).empty());
}

// ---------------------------------------------------------------------------
// Robust (retrying) segmentation.

namespace {

// Three 30-sample level-10 bursts over a level-1 floor (the shape of the
// existing FindsBurstsInSyntheticTrace test).
std::vector<double> three_burst_trace() {
  std::vector<double> trace(400, 1.0);
  for (const std::size_t s : {50u, 170u, 300u}) {
    for (std::size_t i = s; i < s + 30; ++i) trace[i] = 10.0;
  }
  return trace;
}

SegmentationConfig three_burst_config() {
  SegmentationConfig cfg;
  cfg.smooth_window = 3;
  cfg.threshold = 5.0;
  cfg.min_burst_length = 16;
  return cfg;
}

}  // namespace

TEST(RobustSegmentation, CleanTraceMatchesBaseConfigExactly) {
  const auto trace = three_burst_trace();
  const auto cfg = three_burst_config();
  const auto plain = segment_trace(trace, cfg);
  const SegmentationResult result = segment_trace_robust(trace, 3, cfg);
  EXPECT_EQ(result.status, SegmentationStatus::kOk);
  EXPECT_EQ(result.attempts, 1u);
  ASSERT_EQ(result.segments.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(result.segments[i].burst_begin, plain[i].burst_begin);
    EXPECT_EQ(result.segments[i].burst_end, plain[i].burst_end);
    EXPECT_EQ(result.segments[i].window_begin, plain[i].window_begin);
    EXPECT_EQ(result.segments[i].window_end, plain[i].window_end);
  }
  EXPECT_GT(result.burst_consistency, 0.9);
  ASSERT_EQ(result.window_quality.size(), 3u);
  for (const double q : result.window_quality) EXPECT_GT(q, 0.7);
}

TEST(RobustSegmentation, RecoversFromSpuriousBurst) {
  // A level-6 interference burst sits above the base threshold (5.0) and
  // splits window 1: the base config sees 4 bursts. The retry sweep's
  // higher threshold suppresses it and recovers the expected 3 windows.
  auto trace = three_burst_trace();
  for (std::size_t i = 100; i < 120; ++i) trace[i] = 6.0;
  const auto cfg = three_burst_config();
  ASSERT_EQ(segment_trace(trace, cfg).size(), 4u);  // the failure mode
  const SegmentationResult result = segment_trace_robust(trace, 3, cfg);
  EXPECT_EQ(result.status, SegmentationStatus::kRecovered);
  ASSERT_EQ(result.segments.size(), 3u);
  EXPECT_GT(result.attempts, 1u);
  // The recovered bursts are the genuine ones.
  EXPECT_NEAR(static_cast<double>(result.segments[0].burst_begin), 50.0, 4.0);
  EXPECT_NEAR(static_cast<double>(result.segments[1].burst_begin), 170.0, 4.0);
  EXPECT_NEAR(static_cast<double>(result.segments[2].burst_begin), 300.0, 4.0);
}

TEST(RobustSegmentation, FailsGracefullyOnHopelessTrace) {
  const std::vector<double> flat(300, 2.0);
  const SegmentationResult result = segment_trace_robust(flat, 5, three_burst_config());
  EXPECT_EQ(result.status, SegmentationStatus::kFailed);
  EXPECT_EQ(result.window_quality.size(), result.segments.size());
  EXPECT_TRUE(segment_trace_robust({}, 5, three_burst_config()).segments.empty());
  EXPECT_EQ(segment_trace_robust(flat, 0, three_burst_config()).status,
            SegmentationStatus::kFailed);
}

TEST(RobustSegmentation, DegenerateSegmentsScoreFiniteNotNaN) {
  // Regression (quality-score guard): zero-length bursts and windows drive
  // the median lengths to zero; without the max(1, median) floor the scores
  // divide 0/0 and the NaNs propagate into every downstream confidence
  // gate. The guard must pin them to finite values in [0, 1].
  std::vector<Segment> degenerate(3);
  for (auto& s : degenerate) {
    s.burst_begin = s.burst_end = 10;    // zero-length burst
    s.window_begin = s.window_end = 20;  // zero-length window
  }
  const auto quality = score_windows(degenerate);
  ASSERT_EQ(quality.size(), degenerate.size());
  for (const double q : quality) {
    EXPECT_TRUE(std::isfinite(q));
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  const double consistency = burst_length_consistency(degenerate);
  EXPECT_TRUE(std::isfinite(consistency));
  EXPECT_EQ(consistency, 0.0);  // zero-mean burst length short-circuits
}

TEST(RobustSegmentation, DegenerateTracesYieldFiniteQuality) {
  // All-zero, constant and single-impulse traces must never leak NaN into
  // the quality scores or burst consistency, whatever status comes back.
  std::vector<std::vector<double>> traces;
  traces.emplace_back(600, 0.0);
  traces.emplace_back(600, 7.25);
  std::vector<double> impulse(600, 0.0);
  impulse[300] = 50.0;  // one spike shorter than any min_burst_length
  traces.push_back(std::move(impulse));
  for (const auto& trace : traces) {
    const SegmentationResult result = segment_trace_robust(trace, 3);
    ASSERT_EQ(result.window_quality.size(), result.segments.size());
    EXPECT_TRUE(std::isfinite(result.burst_consistency));
    EXPECT_GE(result.burst_consistency, 0.0);
    EXPECT_LE(result.burst_consistency, 1.0);
    for (const double q : result.window_quality) {
      EXPECT_TRUE(std::isfinite(q));
      EXPECT_GE(q, 0.0);
      EXPECT_LE(q, 1.0);
    }
  }
}

TEST(RobustSegmentation, InconsistentBurstLengthsFlaggedDegraded) {
  // Three genuine bursts plus one over-long (merged-looking) burst: count
  // can be made to match 4, but the length spread must downgrade trust.
  std::vector<double> trace(500, 1.0);
  for (const std::size_t s : {40u, 130u, 220u}) {
    for (std::size_t i = s; i < s + 30; ++i) trace[i] = 10.0;
  }
  for (std::size_t i = 310; i < 430; ++i) trace[i] = 10.0;  // 120-sample blob
  const SegmentationResult result = segment_trace_robust(trace, 4, three_burst_config());
  ASSERT_EQ(result.segments.size(), 4u);
  EXPECT_EQ(result.status, SegmentationStatus::kDegraded);
  EXPECT_LT(result.burst_consistency, 0.75);
  // The blob's quality is the worst of the four.
  ASSERT_EQ(result.window_quality.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_GT(result.window_quality[i], result.window_quality[3]);
}

TEST(RobustSegmentation, BurstConsistencyScore) {
  std::vector<Segment> same(3);
  for (auto& s : same) {
    s.burst_begin = 0;
    s.burst_end = 30;
  }
  EXPECT_NEAR(burst_length_consistency(same), 1.0, 1e-12);
  EXPECT_EQ(burst_length_consistency({}), 0.0);
  std::vector<Segment> wild(2);
  wild[0].burst_begin = 0;
  wild[0].burst_end = 10;
  wild[1].burst_begin = 20;
  wild[1].burst_end = 120;
  EXPECT_LT(burst_length_consistency(wild), 0.5);
}

TEST(Poi, ClassMeansAndSosd) {
  TraceSet set;
  // Class 0: flat zero; class 1: bump at index 2.
  for (int rep = 0; rep < 4; ++rep) {
    set.add({{0, 0, 0, 0}, 0});
    set.add({{0, 0, 5, 0}, 1});
  }
  const ClassMeans means = class_means(set);
  ASSERT_EQ(means.size(), 2u);
  EXPECT_NEAR(means.at(1)[2], 5.0, 1e-12);
  const auto sosd = sosd_curve(means);
  ASSERT_EQ(sosd.size(), 4u);
  EXPECT_NEAR(sosd[2], 25.0, 1e-12);
  EXPECT_NEAR(sosd[0], 0.0, 1e-12);
}

TEST(Poi, SelectRespectsSpacing) {
  const std::vector<double> sosd = {0.0, 10.0, 9.0, 8.0, 0.0, 7.0};
  const auto pois = select_pois(sosd, 3, 2);
  ASSERT_EQ(pois.size(), 3u);
  // Top pick is 1; 2 is too close; 3 is picked; 5 is picked.
  EXPECT_EQ(pois[0], 1u);
  EXPECT_EQ(pois[1], 3u);
  EXPECT_EQ(pois[2], 5u);
}

TEST(Poi, ExtractChecksLength) {
  EXPECT_THROW(extract_pois({1.0, 2.0}, {5}), std::invalid_argument);
  EXPECT_EQ(extract_pois({1.0, 2.0, 3.0}, {0, 2}), (std::vector<double>{1.0, 3.0}));
}

TEST(Poi, UnlabelledTraceRejected) {
  TraceSet set;
  set.add({{1.0}, Trace::kNoLabel});
  EXPECT_THROW(class_means(set), std::invalid_argument);
}

TEST(Templates, ClassifiesSyntheticGaussians) {
  // Three classes with distinct 2-D means, shared covariance.
  num::Xoshiro256StarStar rng(404);
  const double means[3][2] = {{0, 0}, {3, 0}, {0, 3}};
  TemplateBuilder builder(2);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 400; ++i) {
      builder.add(c, {means[c][0] + rng.gaussian() * 0.5,
                      means[c][1] + rng.gaussian() * 0.5});
    }
  }
  const TemplateSet templates = builder.build();
  EXPECT_EQ(templates.dim(), 2u);

  int correct = 0;
  const int trials = 600;
  for (int i = 0; i < trials; ++i) {
    const int c = static_cast<int>(rng.uniform_below(3));
    const std::vector<double> obs = {means[c][0] + rng.gaussian() * 0.5,
                                     means[c][1] + rng.gaussian() * 0.5};
    if (templates.classify(obs) == c) ++correct;
  }
  EXPECT_GT(correct, trials * 95 / 100);
}

TEST(Templates, PosteriorSumsToOne) {
  num::Xoshiro256StarStar rng(7);
  TemplateBuilder builder(1);
  for (int i = 0; i < 50; ++i) {
    builder.add(0, {rng.gaussian()});
    builder.add(1, {5.0 + rng.gaussian()});
  }
  const TemplateSet templates = builder.build();
  const auto post = templates.posterior({4.8});
  EXPECT_NEAR(post[0] + post[1], 1.0, 1e-12);
  EXPECT_GT(post[1], 0.9);
}

TEST(Templates, BuilderValidation) {
  EXPECT_THROW(TemplateBuilder(0), std::invalid_argument);
  TemplateBuilder builder(2);
  builder.add(0, {1.0, 2.0});
  EXPECT_THROW(builder.add(0, {1.0}), std::invalid_argument);  // wrong dim
  EXPECT_THROW((void)builder.build(), std::runtime_error);     // one class only
  builder.add(1, {0.0, 0.0});
  EXPECT_THROW((void)builder.build(), std::runtime_error);     // classes too small
}

TEST(Templates, DegenerateCovarianceHandledByRidge) {
  // All observations identical per class: scatter is zero; the ridge keeps
  // the pooled covariance invertible.
  TemplateBuilder builder(2);
  for (int i = 0; i < 5; ++i) {
    builder.add(0, {0.0, 0.0});
    builder.add(1, {1.0, 1.0});
  }
  const TemplateSet templates = builder.build(1e-3);
  EXPECT_EQ(templates.classify({0.9, 1.1}), 1);
}

TEST(Templates, PosteriorStableAtExtremeMahalanobisDistance) {
  // Log-likelihoods at observations absurdly far from every template reach
  // magnitudes around -1e16; a naive exp(score)/sum softmax underflows to
  // 0/0 and returns NaN for every class. The max-subtracted normalization
  // must stay finite and normalized, and agree with a softmax computed
  // directly from the reference log scores.
  num::Xoshiro256StarStar rng(2026);
  TemplateBuilder builder(2);
  for (int i = 0; i < 80; ++i) {
    builder.add(-1, {-2.0 + 0.4 * rng.gaussian(), 0.4 * rng.gaussian()});
    builder.add(0, {0.4 * rng.gaussian(), 0.4 * rng.gaussian()});
    builder.add(1, {2.0 + 0.4 * rng.gaussian(), 0.4 * rng.gaussian()});
  }
  const TemplateSet templates = builder.build();
  for (const double scale : {1e3, 1e6, 1e8}) {
    const std::vector<double> obs = {scale, -scale};
    const auto post = templates.posterior(obs);
    ASSERT_EQ(post.size(), 3u);
    double sum = 0.0;
    for (const double p : post) {
      EXPECT_TRUE(std::isfinite(p)) << "scale " << scale;
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << "scale " << scale;

    // The most likely class must also win the posterior.
    const auto scores = templates.log_scores(obs);
    EXPECT_EQ(std::max_element(post.begin(), post.end()) - post.begin(),
              std::max_element(scores.begin(), scores.end()) - scores.begin());

    // Differential anchor: explicit max-subtracted softmax over the seed
    // (reference) log scores.
    const auto ref = templates.log_scores_reference(obs);
    const double mx = *std::max_element(ref.begin(), ref.end());
    std::vector<double> expected(ref.size());
    double z = 0.0;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expected[i] = std::exp(ref[i] - mx);
      z += expected[i];
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(post[i], expected[i] / z, 1e-12) << "scale " << scale;
    }
  }
}

TEST(Classifier, SeparatesPatternsAndValidates) {
  TraceSet train;
  num::Xoshiro256StarStar rng(11);
  for (int i = 0; i < 50; ++i) {
    Trace a;
    for (int k = 0; k < 20; ++k) a.samples.push_back(1.0 + 0.1 * rng.gaussian());
    a.label = -1;
    train.add(std::move(a));
    Trace b;
    for (int k = 0; k < 20; ++k)
      b.samples.push_back((k < 10 ? 3.0 : 1.0) + 0.1 * rng.gaussian());
    b.label = 1;
    train.add(std::move(b));
  }
  PatternClassifier clf;
  clf.fit(train, 16);
  EXPECT_TRUE(clf.fitted());
  std::vector<double> probe(20, 1.0);
  EXPECT_EQ(clf.classify(probe), -1);
  for (int k = 0; k < 10; ++k) probe[k] = 3.0;
  EXPECT_EQ(clf.classify(probe), 1);
  EXPECT_THROW((void)clf.classify({1.0}), std::invalid_argument);  // too short
  PatternClassifier unfitted;
  EXPECT_THROW((void)unfitted.classify(probe), std::logic_error);
}

TEST(Confusion, PercentsAndAccuracy) {
  ConfusionMatrix cm;
  for (int i = 0; i < 8; ++i) cm.add(1, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 2);
  cm.add(0, 0);
  EXPECT_EQ(cm.total(), 11u);
  EXPECT_NEAR(cm.percent(1, 1), 80.0, 1e-12);
  EXPECT_NEAR(cm.percent(1, 2), 20.0, 1e-12);
  EXPECT_NEAR(cm.accuracy(0), 100.0, 1e-12);
  EXPECT_NEAR(cm.overall_accuracy(), 100.0 * 9 / 11, 1e-9);
  EXPECT_EQ(cm.percent(5, 5), 0.0);  // unseen truth
  EXPECT_EQ(cm.truths(), (std::vector<std::int32_t>{0, 1}));
}

TEST(Confusion, TableRendering) {
  ConfusionMatrix cm;
  cm.add(-1, -1);
  cm.add(0, 0);
  cm.add(1, -1);
  const std::string table = cm.to_table(-1, 1, -1, 1);
  EXPECT_NE(table.find("100.0"), std::string::npos);
  EXPECT_FALSE(table.empty());
}

// ---------------------------------------------------------------------------
// SCA metrics: ranks, guessing entropy, success@k.

#include "sca/metrics.hpp"

TEST(Metrics, RankOfTruth) {
  const std::vector<std::int32_t> support = {-2, -1, 1, 2};
  const std::vector<double> posterior = {0.1, 0.2, 0.6, 0.1};
  EXPECT_EQ(rank_of_truth(support, posterior, 1), 1u);
  EXPECT_EQ(rank_of_truth(support, posterior, -1), 2u);
  EXPECT_EQ(rank_of_truth(support, posterior, -2), 3u);  // tie with 2: attacker-favourable
  EXPECT_EQ(rank_of_truth(support, posterior, 99), 5u);  // not in support
  EXPECT_THROW((void)rank_of_truth(support, {0.5}, 1), std::invalid_argument);
}

TEST(Metrics, AccumulatorStatistics) {
  RankAccumulator acc;
  EXPECT_EQ(acc.guessing_entropy(), 0.0);
  for (const std::size_t r : {1u, 1u, 2u, 4u}) acc.add(r);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_NEAR(acc.guessing_entropy(), 2.0, 1e-12);
  EXPECT_NEAR(acc.success_rate_at(1), 0.5, 1e-12);
  EXPECT_NEAR(acc.success_rate_at(2), 0.75, 1e-12);
  EXPECT_NEAR(acc.success_rate_at(4), 1.0, 1e-12);
  EXPECT_EQ(acc.median_rank(), 2u);
  EXPECT_THROW(acc.add(0), std::invalid_argument);
}
