// Worker-pool and seed-splitting properties, plus the accumulator-merge
// utilities the parallel campaign engine relies on. The bit-identity of the
// full pipeline at different worker counts is pinned separately in
// test_campaign_equivalence.cpp; this file covers the primitives:
//
//   * WorkerPool executes every index exactly once, reports worker ids in
//     range, propagates task exceptions, and stays usable afterwards;
//   * stream_seed never collides across trace indices and depends only on
//     (base, index) — not on worker count or submission order;
//   * RunningCovariance/TemplateBuilder merges match the streaming pass up
//     to floating-point tolerance (they are *not* on the bit-exact path);
//   * HintTally counters accumulated per worker and merged agree exactly
//     with an ordered recount — the regression test for the summarize/
//     HintPolicy counter fix (shared-mutation would lose updates).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "core/hints.hpp"
#include "core/parallel.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "sca/template_attack.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

// --- WorkerPool ------------------------------------------------------------

TEST(WorkerPool, ExecutesEveryIndexExactlyOnce) {
  for (const std::size_t workers : {0u, 1u, 2u, 4u, 8u}) {
    WorkerPool pool(workers);
    for (const std::size_t count : {0u, 1u, 3u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(count);
      pool.run_indexed(count, [&](std::size_t i, std::size_t) { ++hits[i]; });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " count=" << count
                                     << " index=" << i;
      }
    }
  }
}

TEST(WorkerPool, WorkerIdsStayInRange) {
  for (const std::size_t workers : {0u, 1u, 3u, 8u}) {
    WorkerPool pool(workers);
    const std::size_t slots = std::max<std::size_t>(workers, 1);
    std::atomic<bool> in_range{true};
    pool.run_indexed(500, [&](std::size_t, std::size_t w) {
      if (w >= slots) in_range = false;
    });
    EXPECT_TRUE(in_range.load()) << "workers=" << workers;
  }
}

TEST(WorkerPool, SerialPoolRunsInIndexOrderInline) {
  WorkerPool pool(0);
  EXPECT_TRUE(pool.serial());
  std::vector<std::size_t> order;
  pool.run_indexed(100, [&](std::size_t i, std::size_t w) {
    EXPECT_EQ(w, 0u);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(WorkerPool, PropagatesTaskExceptionAndStaysUsable) {
  for (const std::size_t workers : {0u, 1u, 4u}) {
    WorkerPool pool(workers);
    EXPECT_THROW(pool.run_indexed(64,
                                  [&](std::size_t i, std::size_t) {
                                    if (i == 17) throw std::runtime_error("boom");
                                  }),
                 std::runtime_error)
        << "workers=" << workers;
    // The pool must have drained cleanly and accept the next job.
    std::vector<std::atomic<int>> hits(32);
    pool.run_indexed(32, [&](std::size_t i, std::size_t) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

// --- stream_seed properties ------------------------------------------------

TEST(StreamSeed, DistinctIndicesNeverCollide) {
  // The map index -> seed is provably injective per base (odd stride +
  // SplitMix64 bijection); verify over a large index range anyway.
  const std::uint64_t bases[] = {0ULL, 1ULL, 0xDEADBEEFULL, 1ULL << 63,
                                 0x9E3779B97F4A7C15ULL};
  constexpr std::size_t kIndices = 1u << 17;
  for (const std::uint64_t base : bases) {
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(kIndices * 2);
    for (std::size_t i = 0; i < kIndices; ++i) {
      const auto [_, inserted] = seen.insert(stream_seed(base, i));
      ASSERT_TRUE(inserted) << "collision at base=" << base << " index=" << i;
    }
  }
}

TEST(StreamSeed, StreamDependsOnlyOnBaseAndIndex) {
  // Generate a short RNG stream per index under several worker counts and a
  // shuffled submission order; every schedule must produce the same streams.
  constexpr std::size_t kCount = 256;
  constexpr std::uint64_t kBase = 424242;
  auto stream_for = [](std::size_t index) {
    num::Xoshiro256StarStar rng(stream_seed(kBase, index));
    std::vector<std::uint64_t> out(8);
    for (auto& x : out) x = rng();
    return out;
  };

  std::vector<std::vector<std::uint64_t>> reference(kCount);
  for (std::size_t i = 0; i < kCount; ++i) reference[i] = stream_for(i);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(workers);
    std::vector<std::vector<std::uint64_t>> got(kCount);
    pool.run_indexed(kCount, [&](std::size_t i, std::size_t) { got[i] = stream_for(i); });
    EXPECT_EQ(got, reference) << "workers=" << workers;
  }

  // Submission order: map pool index j to a permuted stream index perm[j].
  std::vector<std::size_t> perm(kCount);
  std::iota(perm.begin(), perm.end(), 0);
  num::Xoshiro256StarStar shuffle_rng(7);
  for (std::size_t i = kCount; i > 1; --i) {
    std::swap(perm[i - 1], perm[shuffle_rng.uniform_below(i)]);
  }
  WorkerPool pool(4);
  std::vector<std::vector<std::uint64_t>> got(kCount);
  pool.run_indexed(kCount, [&](std::size_t j, std::size_t) {
    got[perm[j]] = stream_for(perm[j]);
  });
  EXPECT_EQ(got, reference);
}

// --- accumulator merges ----------------------------------------------------

std::vector<std::vector<double>> random_observations(std::size_t count, std::size_t dim,
                                                     std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  std::vector<std::vector<double>> out(count, std::vector<double>(dim));
  for (auto& v : out) {
    for (auto& x : v) x = rng.gaussian(1.5, 2.0);
  }
  return out;
}

TEST(RunningCovarianceMerge, MatchesSequentialWithinTolerance) {
  constexpr std::size_t kDim = 4;
  const auto obs = random_observations(200, kDim, 99);
  num::RunningCovariance all(kDim);
  for (const auto& v : obs) all.add(v);

  for (const std::size_t split : {1u, 50u, 100u, 199u}) {
    num::RunningCovariance a(kDim);
    num::RunningCovariance b(kDim);
    for (std::size_t i = 0; i < split; ++i) a.add(obs[i]);
    for (std::size_t i = split; i < obs.size(); ++i) b.add(obs[i]);
    a.merge(b);
    ASSERT_EQ(a.count(), all.count());
    for (std::size_t i = 0; i < kDim; ++i) {
      EXPECT_NEAR(a.mean()[i], all.mean()[i], 1e-9) << "split=" << split;
      for (std::size_t j = 0; j < kDim; ++j) {
        EXPECT_NEAR(a.covariance()(i, j), all.covariance()(i, j), 1e-9)
            << "split=" << split;
      }
    }
  }
}

TEST(RunningCovarianceMerge, AssociativeAndEmptySafe) {
  constexpr std::size_t kDim = 3;
  const auto obs = random_observations(90, kDim, 5);
  auto accumulate = [&](std::size_t lo, std::size_t hi) {
    num::RunningCovariance c(kDim);
    for (std::size_t i = lo; i < hi; ++i) c.add(obs[i]);
    return c;
  };
  num::RunningCovariance left = accumulate(0, 30);
  left.merge(accumulate(30, 60));
  left.merge(accumulate(60, 90));

  num::RunningCovariance tail = accumulate(30, 60);
  tail.merge(accumulate(60, 90));
  num::RunningCovariance right = accumulate(0, 30);
  right.merge(tail);

  ASSERT_EQ(left.count(), right.count());
  for (std::size_t i = 0; i < kDim; ++i) {
    EXPECT_NEAR(left.mean()[i], right.mean()[i], 1e-9);
    for (std::size_t j = 0; j < kDim; ++j) {
      EXPECT_NEAR(left.covariance()(i, j), right.covariance()(i, j), 1e-9);
    }
  }

  num::RunningCovariance empty(kDim);
  num::RunningCovariance into(kDim);
  into.merge(empty);  // no-op
  EXPECT_EQ(into.count(), 0u);
  into.merge(left);  // empty.merge(x) adopts x
  EXPECT_EQ(into.count(), left.count());
  EXPECT_THROW(into.merge(num::RunningCovariance(kDim + 1)), std::invalid_argument);
}

TEST(TemplateBuilderMerge, MatchesSingleBuilderWithinTolerance) {
  constexpr std::size_t kDim = 3;
  num::Xoshiro256StarStar rng(11);
  std::vector<std::pair<std::int32_t, std::vector<double>>> labelled;
  for (std::int32_t label = -2; label <= 2; ++label) {
    for (int k = 0; k < 20; ++k) {
      std::vector<double> v(kDim);
      for (auto& x : v) x = rng.gaussian(static_cast<double>(label), 0.5);
      labelled.emplace_back(label, std::move(v));
    }
  }

  sca::TemplateBuilder single(kDim);
  for (const auto& [label, v] : labelled) single.add(label, v);

  sca::TemplateBuilder part_a(kDim);
  sca::TemplateBuilder part_b(kDim);
  for (std::size_t i = 0; i < labelled.size(); ++i) {
    (i % 2 == 0 ? part_a : part_b).add(labelled[i].first, labelled[i].second);
  }
  part_a.merge(part_b);
  EXPECT_EQ(part_a.total_count(), single.total_count());

  const sca::TemplateSet ref = single.build();
  const sca::TemplateSet merged = part_a.build();
  ASSERT_EQ(merged.labels(), ref.labels());
  const std::vector<double> probe = {0.4, -0.1, 0.7};
  const std::vector<double> ref_scores = ref.log_scores(probe);
  const std::vector<double> merged_scores = merged.log_scores(probe);
  for (std::size_t i = 0; i < ref_scores.size(); ++i) {
    EXPECT_NEAR(merged_scores[i], ref_scores[i], 1e-6);
  }
  EXPECT_EQ(merged.classify(probe), ref.classify(probe));
}

// --- HintTally counter merge (regression) ----------------------------------

std::vector<HintRecord> synthetic_records(std::size_t count, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  std::vector<HintRecord> out(count);
  for (auto& r : out) {
    switch (rng.uniform_below(4)) {
      case 0: r = {HintRecord::Kind::kPerfect, 0.0}; break;
      case 1: r = {HintRecord::Kind::kApproximate, rng.uniform_double() + 0.01}; break;
      case 2: r = {HintRecord::Kind::kSignOnly, 10.0}; break;
      default: r = {HintRecord::Kind::kSkipped, 0.0}; break;
    }
  }
  return out;
}

TEST(HintTally, PerWorkerMergeMatchesOrderedRecountExactly) {
  // The summarize_recovery / HintPolicy counter fix: counters must be
  // accumulated per worker and merged, never shared-mutated. Feed a large
  // record batch through a real pool into per-worker tallies and require the
  // merged integer counters to match the ordered serial recount exactly.
  const std::vector<HintRecord> records = synthetic_records(20000, 321);
  HintTally serial;
  for (const HintRecord& r : records) serial.add(r);

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(workers);
    std::vector<HintTally> partials(std::max<std::size_t>(workers, 1));
    pool.run_indexed(records.size(),
                     [&](std::size_t i, std::size_t w) { partials[w].add(records[i]); });
    HintTally merged;
    for (const HintTally& t : partials) merged.merge(t);
    EXPECT_EQ(merged.perfect, serial.perfect) << "workers=" << workers;
    EXPECT_EQ(merged.approximate, serial.approximate) << "workers=" << workers;
    EXPECT_EQ(merged.sign_only, serial.sign_only) << "workers=" << workers;
    EXPECT_EQ(merged.skipped, serial.skipped) << "workers=" << workers;
    // The variance sum is a float reduction: order-sensitive, so tolerance.
    EXPECT_NEAR(merged.approximate_variance_sum, serial.approximate_variance_sum,
                1e-9 * std::max(1.0, serial.approximate_variance_sum));
  }
}

TEST(HintTally, SummaryComputesMeanOverApproximateOnly) {
  HintTally tally;
  tally.add({HintRecord::Kind::kApproximate, 1.0});
  tally.add({HintRecord::Kind::kApproximate, 3.0});
  tally.add({HintRecord::Kind::kPerfect, 0.0});
  tally.add({HintRecord::Kind::kSignOnly, 10.0});
  tally.add({HintRecord::Kind::kSkipped, 0.0});
  const HintSummary s = tally.summary();
  EXPECT_EQ(s.perfect, 1u);
  EXPECT_EQ(s.approximate, 2u);
  EXPECT_EQ(s.sign_only, 1u);
  EXPECT_EQ(s.skipped, 1u);
  EXPECT_DOUBLE_EQ(s.mean_residual_variance, 2.0);

  const HintSummary empty = HintTally{}.summary();
  EXPECT_EQ(empty.approximate, 0u);
  EXPECT_DOUBLE_EQ(empty.mean_residual_variance, 0.0);
}

}  // namespace
