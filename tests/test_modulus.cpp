// Tests for Modulus (Barrett reduction) and scalar modular arithmetic.

#include <gtest/gtest.h>

#include "numeric/rng.hpp"
#include "seal/modarith.hpp"
#include "seal/modulus.hpp"

namespace seal = reveal::seal;

namespace {
__extension__ typedef unsigned __int128 u128;
}

TEST(Modulus, RejectsBadValues) {
  EXPECT_THROW(seal::Modulus(0), std::invalid_argument);
  EXPECT_THROW(seal::Modulus(1), std::invalid_argument);
  EXPECT_THROW(seal::Modulus(std::uint64_t{1} << 61), std::invalid_argument);
  EXPECT_NO_THROW(seal::Modulus(2));
  EXPECT_NO_THROW(seal::Modulus((std::uint64_t{1} << 61) - 1));
}

TEST(Modulus, BasicProperties) {
  const seal::Modulus q(132120577);
  EXPECT_EQ(q.value(), 132120577u);
  EXPECT_EQ(q.bit_count(), 27);
  EXPECT_TRUE(q.is_prime());
}

TEST(Modulus, ReduceMatchesOperatorPercent) {
  reveal::num::Xoshiro256StarStar rng(2024);
  const std::uint64_t moduli[] = {2, 3, 132120577, (std::uint64_t{1} << 61) - 1, 4294967291ULL};
  for (const std::uint64_t m : moduli) {
    const seal::Modulus q(m);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t x = rng();
      EXPECT_EQ(q.reduce(x), x % m) << "m=" << m << " x=" << x;
    }
  }
}

TEST(Modulus, Reduce128MatchesWideModulo) {
  reveal::num::Xoshiro256StarStar rng(7);
  const std::uint64_t moduli[] = {3, 97, 132120577, (std::uint64_t{1} << 61) - 1};
  for (const std::uint64_t m : moduli) {
    const seal::Modulus q(m);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t hi = rng();
      const std::uint64_t lo = rng();
      const u128 wide = (static_cast<u128>(hi) << 64) | lo;
      EXPECT_EQ(q.reduce128(hi, lo), static_cast<std::uint64_t>(wide % m));
    }
  }
}

TEST(Primality, KnownValues) {
  EXPECT_FALSE(seal::is_prime_u64(0));
  EXPECT_FALSE(seal::is_prime_u64(1));
  EXPECT_TRUE(seal::is_prime_u64(2));
  EXPECT_TRUE(seal::is_prime_u64(3));
  EXPECT_FALSE(seal::is_prime_u64(4));
  EXPECT_TRUE(seal::is_prime_u64(132120577));
  EXPECT_TRUE(seal::is_prime_u64((std::uint64_t{1} << 61) - 1));  // Mersenne
  EXPECT_FALSE(seal::is_prime_u64(3215031751ULL));  // strong pseudoprime to 2,3,5,7
  EXPECT_TRUE(seal::is_prime_u64(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Primality, FindNttPrime) {
  const seal::Modulus q = seal::find_ntt_prime(27, 1024);
  EXPECT_TRUE(q.is_prime());
  EXPECT_EQ((q.value() - 1) % 2048, 0u);
  EXPECT_LT(q.value(), std::uint64_t{1} << 27);
  // The paper's modulus is an NTT prime for n = 1024.
  EXPECT_EQ((132120577 - 1) % 2048, 0);
}

TEST(Primality, FindNttPrimesDistinct) {
  const auto primes = seal::find_ntt_primes(30, 2048, 3);
  ASSERT_EQ(primes.size(), 3u);
  EXPECT_NE(primes[0].value(), primes[1].value());
  EXPECT_NE(primes[1].value(), primes[2].value());
  for (const auto& p : primes) {
    EXPECT_TRUE(p.is_prime());
    EXPECT_EQ((p.value() - 1) % 4096, 0u);
  }
}

TEST(ModArith, AddSubNegate) {
  const seal::Modulus q(17);
  EXPECT_EQ(seal::add_mod(16, 5, q), 4u);
  EXPECT_EQ(seal::sub_mod(3, 5, q), 15u);
  EXPECT_EQ(seal::negate_mod(0, q), 0u);
  EXPECT_EQ(seal::negate_mod(5, q), 12u);
}

TEST(ModArith, MulModMatchesWide) {
  reveal::num::Xoshiro256StarStar rng(55);
  const seal::Modulus q((std::uint64_t{1} << 61) - 1);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng() % q.value();
    const std::uint64_t b = rng() % q.value();
    const u128 expect = static_cast<u128>(a) * b % q.value();
    EXPECT_EQ(seal::mul_mod(a, b, q), static_cast<std::uint64_t>(expect));
  }
}

TEST(ModArith, PowMod) {
  const seal::Modulus q(97);
  EXPECT_EQ(seal::pow_mod(2, 0, q), 1u);
  EXPECT_EQ(seal::pow_mod(2, 10, q), 1024 % 97);
  // Fermat: a^(q-1) = 1.
  for (std::uint64_t a = 1; a < 20; ++a) EXPECT_EQ(seal::pow_mod(a, 96, q), 1u);
}

TEST(ModArith, InverseMod) {
  const seal::Modulus q(132120577);
  for (std::uint64_t a : {2ULL, 3ULL, 12345ULL, 132120576ULL}) {
    const std::uint64_t inv = seal::inverse_mod(a, q);
    EXPECT_EQ(seal::mul_mod(a, inv, q), 1u);
  }
  EXPECT_THROW((void)seal::inverse_mod(0, q), std::invalid_argument);
  const seal::Modulus composite(16);
  EXPECT_THROW((void)seal::inverse_mod(3, composite), std::invalid_argument);
}

TEST(ModArith, PrimitiveRoot) {
  const seal::Modulus q(132120577);
  const std::uint64_t psi = seal::minimal_primitive_root(2048, q);
  // psi^1024 = -1 and psi^2048 = 1.
  EXPECT_EQ(seal::pow_mod(psi, 1024, q), q.value() - 1);
  EXPECT_EQ(seal::pow_mod(psi, 2048, q), 1u);
  // Minimality: psi is the smallest among all primitive 2048th roots.
  std::uint64_t any_root = 0;
  ASSERT_TRUE(seal::try_primitive_root(2048, q, any_root));
  EXPECT_LE(psi, any_root);
}

TEST(ModArith, PrimitiveRootFailsWhenImpossible) {
  const seal::Modulus q(17);  // 16 = 2^4; no 64th root of unity
  std::uint64_t root = 0;
  EXPECT_FALSE(seal::try_primitive_root(64, q, root));
  EXPECT_THROW((void)seal::minimal_primitive_root(64, q), std::runtime_error);
}

TEST(ModArith, CenterMod) {
  const seal::Modulus q(17);
  EXPECT_EQ(seal::center_mod(0, q), 0);
  EXPECT_EQ(seal::center_mod(8, q), 8);
  EXPECT_EQ(seal::center_mod(9, q), -8);
  EXPECT_EQ(seal::center_mod(16, q), -1);
}
