// NTT correctness: inverse property, linearity, and agreement of the
// NTT-based negacyclic product with a schoolbook reference.

#include <gtest/gtest.h>

#include <tuple>

#include "numeric/rng.hpp"
#include "seal/modarith.hpp"
#include "seal/ntt.hpp"

namespace seal = reveal::seal;

namespace {

std::vector<std::uint64_t> random_poly(std::size_t n, const seal::Modulus& q,
                                       reveal::num::Xoshiro256StarStar& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng() % q.value();
  return out;
}

/// Schoolbook negacyclic product mod q (x^n = -1).
std::vector<std::uint64_t> negacyclic_schoolbook(const std::vector<std::uint64_t>& a,
                                                 const std::vector<std::uint64_t>& b,
                                                 const seal::Modulus& q) {
  const std::size_t n = a.size();
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t prod = seal::mul_mod(a[i], b[j], q);
      const std::size_t k = i + j;
      if (k < n) out[k] = seal::add_mod(out[k], prod, q);
      else out[k - n] = seal::sub_mod(out[k - n], prod, q);
    }
  }
  return out;
}

}  // namespace

TEST(ReverseBits, Basic) {
  EXPECT_EQ(seal::reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(seal::reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(seal::reverse_bits(5, 0), 0u);
}

TEST(NttTables, RejectsBadParameters) {
  EXPECT_THROW(seal::NttTables(1000, seal::Modulus(132120577)), std::invalid_argument);
  // 2^20 + 7 is not ≡ 1 mod 2n for n = 1024 (and may not be prime).
  EXPECT_THROW(seal::NttTables(1024, seal::Modulus(1048583)), std::invalid_argument);
  // Composite modulus rejected even if ≡ 1 mod 2n.
  const std::uint64_t composite = 2049ULL * 5;  // 10245 = 1 + 2048*5 + ...
  if ((composite - 1) % 2048 == 0 && !seal::is_prime_u64(composite)) {
    EXPECT_THROW(seal::NttTables(1024, seal::Modulus(composite)), std::invalid_argument);
  }
}

class NttRoundtrip : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(NttRoundtrip, ForwardInverseIsIdentity) {
  const auto [n, bits] = GetParam();
  const seal::Modulus q = seal::find_ntt_prime(bits, n);
  const seal::NttTables tables(n, q);
  reveal::num::Xoshiro256StarStar rng(n * 31 + bits);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<std::uint64_t> a = random_poly(n, q, rng);
    const std::vector<std::uint64_t> original = a;
    tables.forward_transform(a);
    EXPECT_NE(a, original);  // overwhelmingly likely
    tables.inverse_transform(a);
    EXPECT_EQ(a, original);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndModuli, NttRoundtrip,
    ::testing::Values(std::make_tuple(std::size_t{4}, 10),
                      std::make_tuple(std::size_t{8}, 14),
                      std::make_tuple(std::size_t{64}, 20),
                      std::make_tuple(std::size_t{256}, 24),
                      std::make_tuple(std::size_t{1024}, 27),
                      std::make_tuple(std::size_t{2048}, 40)));

TEST(Ntt, PaperModulusRoundtrip) {
  const seal::Modulus q(132120577);
  const seal::NttTables tables(1024, q);
  reveal::num::Xoshiro256StarStar rng(9);
  std::vector<std::uint64_t> a = random_poly(1024, q, rng);
  const auto original = a;
  tables.forward_transform(a);
  tables.inverse_transform(a);
  EXPECT_EQ(a, original);
}

TEST(Ntt, MultiplicationMatchesSchoolbook) {
  for (const std::size_t n : {8ULL, 32ULL, 64ULL}) {
    const seal::Modulus q = seal::find_ntt_prime(20, n);
    const seal::NttTables tables(n, q);
    reveal::num::Xoshiro256StarStar rng(n);
    std::vector<std::uint64_t> a = random_poly(n, q, rng);
    std::vector<std::uint64_t> b = random_poly(n, q, rng);
    const auto expect = negacyclic_schoolbook(a, b, q);

    tables.forward_transform(a);
    tables.forward_transform(b);
    std::vector<std::uint64_t> c(n);
    for (std::size_t i = 0; i < n; ++i) c[i] = seal::mul_mod(a[i], b[i], q);
    tables.inverse_transform(c);
    EXPECT_EQ(c, expect) << "n=" << n;
  }
}

TEST(Ntt, Linearity) {
  const std::size_t n = 64;
  const seal::Modulus q = seal::find_ntt_prime(20, n);
  const seal::NttTables tables(n, q);
  reveal::num::Xoshiro256StarStar rng(77);
  std::vector<std::uint64_t> a = random_poly(n, q, rng);
  std::vector<std::uint64_t> b = random_poly(n, q, rng);
  std::vector<std::uint64_t> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = seal::add_mod(a[i], b[i], q);
  tables.forward_transform(a);
  tables.forward_transform(b);
  tables.forward_transform(sum);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(sum[i], seal::add_mod(a[i], b[i], q));
  }
}

TEST(Ntt, TransformOfDeltaIsConstantOne) {
  // NTT(1, 0, ..., 0) evaluates x^0 at all roots: all ones.
  const std::size_t n = 16;
  const seal::Modulus q = seal::find_ntt_prime(16, n);
  const seal::NttTables tables(n, q);
  std::vector<std::uint64_t> delta(n, 0);
  delta[0] = 1;
  tables.forward_transform(delta);
  for (const std::uint64_t v : delta) EXPECT_EQ(v, 1u);
}

TEST(Ntt, SizeMismatchThrows) {
  const seal::Modulus q = seal::find_ntt_prime(16, 16);
  const seal::NttTables tables(16, q);
  std::vector<std::uint64_t> wrong(8, 0);
  EXPECT_THROW(tables.forward_transform(wrong), std::invalid_argument);
  EXPECT_THROW(tables.inverse_transform(wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Fast (Shoup/Harvey lazy) NTT: must agree with the reference transform.

#include "seal/ntt_fast.hpp"

class FastNttEquivalence : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(FastNttEquivalence, MatchesReferenceTransforms) {
  const auto [n, bits] = GetParam();
  const seal::Modulus q = seal::find_ntt_prime(bits, n);
  const seal::NttTables reference(n, q);
  const seal::FastNttTables fast(n, q);
  reveal::num::Xoshiro256StarStar rng(n * 7 + bits);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<std::uint64_t> a = random_poly(n, q, rng);
    std::vector<std::uint64_t> b = a;
    reference.forward_transform(a);
    fast.forward_transform(b);
    ASSERT_EQ(a, b) << "forward mismatch, rep " << rep;
    reference.inverse_transform(a);
    fast.inverse_transform(b);
    ASSERT_EQ(a, b) << "inverse mismatch, rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndModuli, FastNttEquivalence,
    ::testing::Values(std::make_tuple(std::size_t{8}, 14),
                      std::make_tuple(std::size_t{64}, 20),
                      std::make_tuple(std::size_t{1024}, 27),
                      std::make_tuple(std::size_t{2048}, 50),
                      std::make_tuple(std::size_t{4096}, 60)));

TEST(FastNtt, RoundtripOnPaperModulus) {
  const seal::Modulus q(132120577);
  const seal::FastNttTables tables(1024, q);
  reveal::num::Xoshiro256StarStar rng(4242);
  std::vector<std::uint64_t> a = random_poly(1024, q, rng);
  const auto original = a;
  tables.forward_transform(a);
  tables.inverse_transform(a);
  EXPECT_EQ(a, original);
}

TEST(FastNtt, RejectsOversizedModulus) {
  // q just below 2^61 passes; the constructor enforces the lazy bound.
  EXPECT_NO_THROW(seal::FastNttTables(8, seal::find_ntt_prime(60, 8)));
  EXPECT_THROW(seal::FastNttTables(1000, seal::Modulus(132120577)),
               std::invalid_argument);
}
