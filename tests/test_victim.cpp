// Victim firmware tests: the RV32IM Gaussian sampler must faithfully
// reproduce the SEAL v3.2 sampler's distribution and encoding.

#include <gtest/gtest.h>

#include <cmath>

#include "core/victim.hpp"
#include "numeric/stats.hpp"
#include "riscv/machine.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {
constexpr std::uint64_t kPaperQ = 132120577ULL;
}

TEST(Victim, BuildValidation) {
  EXPECT_THROW(build_sampler_firmware(100, {kPaperQ}), std::invalid_argument);  // not pow2
  EXPECT_THROW(build_sampler_firmware(64, {}), std::invalid_argument);
  EXPECT_THROW(build_sampler_firmware(64, {std::uint64_t{1} << 32}), std::invalid_argument);
  const VictimProgram prog = build_sampler_firmware(64, {kPaperQ});
  EXPECT_FALSE(prog.words.empty());
  EXPECT_GT(prog.mul_pc, prog.loop_pc);
}

TEST(Victim, RunsToCompletionAndDecodes) {
  const VictimProgram prog = build_sampler_firmware(256, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 0xC0FFEE);
  ASSERT_EQ(run.noise.size(), 256u);
  for (const auto v : run.noise) EXPECT_LE(std::llabs(v), 41);
  EXPECT_GT(run.cycles, 256u * 50);  // plausible cost
}

TEST(Victim, SeedZeroRejected) {
  const VictimProgram prog = build_sampler_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  EXPECT_THROW(run_victim(prog, machine, 0), std::invalid_argument);
}

TEST(Victim, DeterministicPerSeed) {
  const VictimProgram prog = build_sampler_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun r1 = run_victim(prog, machine, 1234);
  const VictimRun r2 = run_victim(prog, machine, 1234);
  const VictimRun r3 = run_victim(prog, machine, 1235);
  EXPECT_EQ(r1.noise, r2.noise);
  EXPECT_NE(r1.noise, r3.noise);
}

TEST(Victim, GaussianStatistics) {
  const VictimProgram prog = build_sampler_firmware(1024, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  num::RunningStats stats;
  std::size_t zeros = 0;
  std::size_t total = 0;
  for (std::uint32_t seed = 1; seed <= 20; ++seed) {
    const VictimRun run = run_victim(prog, machine, seed * 77777);
    for (const auto v : run.noise) {
      stats.add(static_cast<double>(v));
      zeros += (v == 0);
      ++total;
    }
  }
  // sigma = 3.19 like SEAL's sampler; mean ~ 0.
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.1);
  // P(0) ~ 0.125 for the rounded Gaussian.
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), 0.125, 0.02);
  // Sampled range stays inside the observed window of the paper.
  EXPECT_GE(stats.min(), -20.0);
  EXPECT_LE(stats.max(), 20.0);
}

TEST(Victim, PolyMemoryEncodingMatchesSeal) {
  // poly[i] must be: v (positive), q - |v| (negative), 0 (zero).
  const VictimProgram prog = build_sampler_firmware(256, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 42424242);
  for (std::size_t i = 0; i < 256; ++i) {
    const std::uint32_t raw =
        machine.load_word(prog.layout.poly_base + static_cast<std::uint32_t>(4 * i));
    const std::int64_t v = run.noise[i];
    if (v > 0) EXPECT_EQ(raw, static_cast<std::uint32_t>(v));
    else if (v < 0) EXPECT_EQ(raw, static_cast<std::uint32_t>(kPaperQ) - static_cast<std::uint32_t>(-v));
    else EXPECT_EQ(raw, 0u);
  }
}

TEST(Victim, MultiModulusRowsFilled) {
  const std::vector<std::uint64_t> moduli = {kPaperQ, 1073479681ULL};  // second NTT prime
  const VictimProgram prog = build_sampler_firmware(64, moduli);
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 987654);
  for (std::size_t i = 0; i < 64; ++i) {
    const std::int64_t v = run.noise[i];
    for (std::size_t j = 0; j < 2; ++j) {
      const std::uint32_t raw = machine.load_word(
          prog.layout.poly_base + static_cast<std::uint32_t>(4 * (i + j * 64)));
      const std::uint64_t qj = moduli[j];
      const std::uint32_t expect =
          v > 0 ? static_cast<std::uint32_t>(v)
                : (v < 0 ? static_cast<std::uint32_t>(qj) - static_cast<std::uint32_t>(-v)
                         : 0u);
      ASSERT_EQ(raw, expect) << "i=" << i << " j=" << j;
    }
  }
}

TEST(PatchedVictim, SameDistributionSameEncoding) {
  const VictimProgram prog = build_patched_firmware(256, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 0xC0FFEE);
  num::RunningStats stats;
  for (const auto v : run.noise) {
    ASSERT_LE(std::llabs(v), 41);
    stats.add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.5);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.4);
  // Memory encoding identical to the vulnerable firmware.
  for (std::size_t i = 0; i < 256; ++i) {
    const std::uint32_t raw =
        machine.load_word(prog.layout.poly_base + static_cast<std::uint32_t>(4 * i));
    const std::int64_t v = run.noise[i];
    if (v > 0) EXPECT_EQ(raw, static_cast<std::uint32_t>(v));
    else if (v < 0)
      EXPECT_EQ(raw, static_cast<std::uint32_t>(kPaperQ) - static_cast<std::uint32_t>(-v));
    else EXPECT_EQ(raw, 0u);
  }
}

TEST(PatchedVictim, SameValuesAsVulnerableForSameSeed) {
  const VictimProgram vuln = build_sampler_firmware(128, {kPaperQ});
  const VictimProgram patched = build_patched_firmware(128, {kPaperQ});
  riscv::Machine m1(vuln.memory_bytes), m2(patched.memory_bytes);
  const VictimRun r1 = run_victim(vuln, m1, 777);
  const VictimRun r2 = run_victim(patched, m2, 777);
  EXPECT_EQ(r1.noise, r2.noise);  // the patch changes control flow only
}

TEST(PatchedVictim, ConstantControlFlowPerCoefficient) {
  // In the patched firmware the sign-assignment instruction count is
  // identical for positive / negative / zero, so per-coefficient cycle
  // counts depend only on the PRNG rejections, not on the sampled sign.
  const VictimProgram prog = build_patched_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 424243);
  EXPECT_EQ(run.noise.size(), 64u);
  // Indirect check: vulnerable firmware executes *more* instructions for
  // negative coefficients (extra negation + modulus load); the patched one
  // must not. Compare instruction counts on a sign-skewed seed pair.
  const VictimProgram vuln = build_sampler_firmware(64, {kPaperQ});
  riscv::Machine mv(vuln.memory_bytes);
  const VictimRun rv = run_victim(vuln, mv, 424243);
  EXPECT_EQ(rv.noise, run.noise);
}

TEST(ShuffledVictim, PermutationIsValidAndVaries) {
  const VictimProgram prog = build_shuffled_firmware(64, {kPaperQ});
  ASSERT_TRUE(prog.shuffled);
  riscv::Machine machine(prog.memory_bytes);
  (void)run_victim(prog, machine, 1111);
  const auto perm1 = read_permutation(prog, machine);
  ASSERT_EQ(perm1.size(), 64u);
  // Valid permutation: every index exactly once.
  std::vector<bool> seen(64, false);
  for (const auto p : perm1) {
    ASSERT_LT(p, 64u);
    ASSERT_FALSE(seen[p]);
    seen[p] = true;
  }
  // Not the identity, and different per seed.
  (void)run_victim(prog, machine, 2222);
  const auto perm2 = read_permutation(prog, machine);
  EXPECT_NE(perm1, perm2);
  bool identity = true;
  for (std::size_t i = 0; i < perm1.size(); ++i) identity &= (perm1[i] == i);
  EXPECT_FALSE(identity);
}

TEST(ShuffledVictim, SamplesSameDistribution) {
  const VictimProgram prog = build_shuffled_firmware(256, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  num::RunningStats stats;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const VictimRun run = run_victim(prog, machine, seed * 31337);
    for (const auto v : run.noise) {
      ASSERT_LE(std::llabs(v), 41);
      stats.add(static_cast<double>(v));
    }
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.15);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.15);
}

TEST(ShuffledVictim, ReadPermutationRejectsUnshuffled) {
  const VictimProgram prog = build_sampler_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  (void)run_victim(prog, machine, 5);
  EXPECT_THROW((void)read_permutation(prog, machine), std::invalid_argument);
}

TEST(Victim, TimeVariantSamplingDuration) {
  // The rejection sampling must make per-coefficient duration variable —
  // the property that forces per-trace segmentation (paper §III-C).
  const VictimProgram prog = build_sampler_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  std::vector<std::uint64_t> cycle_counts;
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    const VictimRun run = run_victim(prog, machine, seed * 101);
    cycle_counts.push_back(run.cycles);
  }
  bool variable = false;
  for (std::size_t i = 1; i < cycle_counts.size(); ++i) {
    if (cycle_counts[i] != cycle_counts[0]) variable = true;
  }
  EXPECT_TRUE(variable);
}

TEST(MaskedVictim, SharesRecombineToSameValues) {
  const VictimProgram masked = build_masked_firmware(128, {kPaperQ});
  const VictimProgram plain = build_sampler_firmware(128, {kPaperQ});
  ASSERT_TRUE(masked.masked);
  riscv::Machine m1(masked.memory_bytes), m2(plain.memory_bytes);
  const VictimRun r1 = run_victim(masked, m1, 97531);
  // The masked firmware draws extra PRNG words (the masks), so the sampled
  // sequence diverges from the plain firmware after the first coefficient —
  // just validate the recombined ground truth is a valid noise vector.
  for (const auto v : r1.noise) ASSERT_LE(std::llabs(v), 41);
  num::RunningStats stats;
  for (std::uint32_t seed = 1; seed <= 24; ++seed) {
    const VictimRun run = run_victim(masked, m1, seed * 2711);
    for (const auto v : run.noise) stats.add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.2);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.2);
  (void)m2;
  (void)plain;
}

TEST(MaskedVictim, StoredWordsLookRandom) {
  // The poly slots hold a uniform mask share, not the value: the word seen
  // on the memory bus must not be the (tiny) noise value anymore.
  const VictimProgram prog = build_masked_firmware(128, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  (void)run_victim(prog, machine, 13579);
  std::size_t masked_words = 0;
  for (std::size_t i = 0; i < 128; ++i) {
    const std::uint32_t share =
        machine.load_word(prog.layout.poly_base + static_cast<std::uint32_t>(4 * i));
    // A uniform 32-bit share almost never lands in the valid encoding set
    // {0..41} u {q-41..q-1} the unmasked firmware writes.
    const bool looks_like_plain_value =
        share <= 41 || (share >= kPaperQ - 41 && share < kPaperQ);
    if (!looks_like_plain_value) ++masked_words;
  }
  EXPECT_GT(masked_words, 120u);
}

TEST(EncryptionVictim, SamplesTwoPolynomials) {
  const VictimProgram prog = build_encryption_firmware(64, {kPaperQ});
  ASSERT_EQ(prog.poly_count, 2u);
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 0xE2E1);
  ASSERT_EQ(run.noise.size(), 128u);  // e1 then e2
  for (const auto v : run.noise) ASSERT_LE(std::llabs(v), 41);
  // Both polynomials must be non-degenerate and different.
  const std::vector<std::int64_t> e1(run.noise.begin(), run.noise.begin() + 64);
  const std::vector<std::int64_t> e2(run.noise.begin() + 64, run.noise.end());
  EXPECT_NE(e1, e2);
}

TEST(EncryptionVictim, MemoryLayoutHasBothPolys) {
  const VictimProgram prog = build_encryption_firmware(64, {kPaperQ});
  riscv::Machine machine(prog.memory_bytes);
  const VictimRun run = run_victim(prog, machine, 777777);
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t i = 0; i < 64; ++i) {
      const std::uint32_t raw = machine.load_word(
          prog.layout.poly_base + static_cast<std::uint32_t>(4 * (p * 64 + i)));
      const std::int64_t v = run.noise[p * 64 + i];
      const std::uint32_t expect =
          v > 0 ? static_cast<std::uint32_t>(v)
                : (v < 0 ? static_cast<std::uint32_t>(kPaperQ) - static_cast<std::uint32_t>(-v)
                         : 0u);
      ASSERT_EQ(raw, expect) << "p=" << p << " i=" << i;
    }
  }
}

TEST(CdtVictim, BothVariantsSampleTheDistribution) {
  for (const bool ct : {false, true}) {
    const VictimProgram prog = build_cdt_firmware(256, {kPaperQ}, ct);
    riscv::Machine machine(prog.memory_bytes);
    num::RunningStats stats;
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
      const VictimRun run = run_victim(prog, machine, seed * 991);
      for (const auto v : run.noise) {
        ASSERT_LE(std::llabs(v), 41);
        stats.add(static_cast<double>(v));
      }
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.15) << "ct=" << ct;
    EXPECT_NEAR(stats.stddev(), 3.19, 0.15) << "ct=" << ct;
  }
}

TEST(CdtVictim, SameValuesAcrossVariantsForSameSeed) {
  const VictimProgram leaky = build_cdt_firmware(128, {kPaperQ}, false);
  const VictimProgram ct = build_cdt_firmware(128, {kPaperQ}, true);
  riscv::Machine m1(leaky.memory_bytes), m2(ct.memory_bytes);
  const VictimRun r1 = run_victim(leaky, m1, 4242);
  const VictimRun r2 = run_victim(ct, m2, 4242);
  EXPECT_EQ(r1.noise, r2.noise);
}

TEST(CdtVictim, LeakyVariantTimingDependsOnValuesConstantTimeDoesNot) {
  // Count cycles per run: the leaky scan's total duration varies with the
  // sampled values; the constant-time scan's is fixed given n.
  const VictimProgram leaky = build_cdt_firmware(64, {kPaperQ}, false);
  const VictimProgram ct = build_cdt_firmware(64, {kPaperQ}, true);
  riscv::Machine m1(leaky.memory_bytes), m2(ct.memory_bytes);

  // The per-run cycle count depends on the value multiset; compare runs
  // whose value sums differ.
  std::vector<std::uint64_t> leaky_cycles, ct_cycles;
  std::vector<std::int64_t> sums;
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    const VictimRun r1 = run_victim(leaky, m1, seed * 131);
    const VictimRun r2 = run_victim(ct, m2, seed * 131);
    leaky_cycles.push_back(r1.cycles);
    ct_cycles.push_back(r2.cycles);
    std::int64_t sum = 0;
    for (const auto v : r1.noise) sum += v;
    sums.push_back(sum);
  }
  // Leaky: cycles correlate with the value sum (scan length = idx).
  bool leaky_varies = false;
  for (std::size_t i = 1; i < leaky_cycles.size(); ++i) {
    if (leaky_cycles[i] != leaky_cycles[0]) leaky_varies = true;
  }
  EXPECT_TRUE(leaky_varies);
  // Constant-time: cycle count varies only with... nothing (fixed draws,
  // fixed scan) except the sign branch bodies. Verify the *scan* is flat by
  // checking two runs with identical sign patterns... simpler: the ct run's
  // cycles minus the branch-body costs must be seed-independent. Use the
  // fact that two runs with the same per-sign counts have equal cycles.
  // Weaker but robust check: ct timing spread is far smaller than leaky's.
  auto spread = [](const std::vector<std::uint64_t>& v) {
    std::uint64_t lo = v[0], hi = v[0];
    for (const auto x : v) {
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(ct_cycles) * 3, spread(leaky_cycles));
}
