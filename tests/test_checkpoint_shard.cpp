// Checkpoint/resume and multi-process sharding byte-identity suite — the
// acceptance contract of DESIGN.md §8: a killed-and-resumed checkpointed
// campaign, a 1/2/4-shard campaign, and a corpus-replayed campaign all
// produce the same final RecoveryReport, hint set, and diagnostics JSON as
// the plain in-memory campaign over the same seed schedule, bit for bit.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/campaign_checkpoint.hpp"
#include "core/campaign_runner.hpp"
#include "core/corpus_campaign.hpp"
#include "core/shard_driver.hpp"
#include "lwe/dbdd.hpp"
#include "obs/diagnostics.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

constexpr std::uint64_t kBaseSeed = 20260808;
constexpr std::size_t kCaptures = 8;

CampaignConfig degraded_config() {
  CampaignConfig cfg;
  cfg.n = 64;
  // Mild faults so the degraded paths (low-confidence, sign-only, skipped,
  // per-range fault counters) are all live in the identity checks.
  cfg.faults.jitter_sigma = 0.4;
  cfg.faults.dropout_rate = 0.02;
  cfg.faults.glitch_count = 2;
  return cfg;
}

lwe::DbddParams paper_params() {
  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;
  return params;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "reveal_ckpt_" + name;
}

void expect_reports_identical(const sca::RecoveryReport& a,
                              const sca::RecoveryReport& b) {
  EXPECT_EQ(a.expected_windows, b.expected_windows);
  EXPECT_EQ(a.recovered_windows, b.recovered_windows);
  EXPECT_EQ(a.segmentation_status, b.segmentation_status);
  EXPECT_EQ(a.segmentation_attempts, b.segmentation_attempts);
  EXPECT_EQ(a.burst_consistency, b.burst_consistency);  // bit-equal
  EXPECT_EQ(a.ok_guesses, b.ok_guesses);
  EXPECT_EQ(a.low_confidence_guesses, b.low_confidence_guesses);
  EXPECT_EQ(a.abstained_guesses, b.abstained_guesses);
  EXPECT_EQ(a.perfect_hints, b.perfect_hints);
  EXPECT_EQ(a.approximate_hints, b.approximate_hints);
  EXPECT_EQ(a.sign_only_hints, b.sign_only_hints);
  EXPECT_EQ(a.dropped_hints, b.dropped_hints);
  EXPECT_EQ(a.bikz, b.bikz);  // bit-equal
  EXPECT_EQ(a.bits, b.bits);  // bit-equal
}

/// Diagnostics comparison used throughout: spans are wall-clock and
/// excluded by construction (the checkpoint/shard paths never merge
/// tracers), so the report is built without a tracer on both sides and
/// compared through its canonical JSON — "byte-identical diagnostics".
std::string diag_json(const obs::Registry& registry, const sca::ConfusionMatrix& confusion) {
  return obs::make_report(registry, nullptr, &confusion).to_json();
}

// Trains one attack for the whole suite and runs the plain in-memory
// reference campaign every identity below is measured against.
class CheckpointShard : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CampaignConfig clean;
    clean.n = 64;
    clean.num_workers = 0;
    SamplerCampaign profiler(clean);
    attack_ = new RevealAttack();
    attack_->train(profiler.collect_windows(120, /*seed_base=*/1));

    CampaignRunner serial(0);
    reference_diag_ = new CampaignDiagnostics();
    reference_ = new RecoveryCampaignResult(serial.run_recovery_campaign(
        *attack_, degraded_config(), CampaignRunner::stream_seeds(kBaseSeed, kCaptures),
        HintPolicy{}, paper_params(), reference_diag_));
    ASSERT_GT(reference_->report.recovered_windows, 0u);
  }
  static void TearDownTestSuite() {
    delete reference_;
    delete reference_diag_;
    delete attack_;
    reference_ = nullptr;
    reference_diag_ = nullptr;
    attack_ = nullptr;
  }

  static void expect_matches_reference(const sca::RecoveryReport& report,
                                       const HintSummary& totals,
                                       const std::vector<std::vector<HintRecord>>& hints,
                                       const obs::Registry& registry,
                                       const sca::ConfusionMatrix& confusion) {
    expect_reports_identical(report, reference_->report);
    EXPECT_EQ(totals.perfect, reference_->hint_totals.perfect);
    EXPECT_EQ(totals.approximate, reference_->hint_totals.approximate);
    EXPECT_EQ(totals.sign_only, reference_->hint_totals.sign_only);
    EXPECT_EQ(totals.skipped, reference_->hint_totals.skipped);
    EXPECT_EQ(totals.mean_residual_variance,
              reference_->hint_totals.mean_residual_variance);
    EXPECT_EQ(hints, reference_->hints);
    EXPECT_EQ(diag_json(registry, confusion),
              diag_json(reference_diag_->registry, reference_diag_->confusion));
  }

  static RevealAttack* attack_;
  static RecoveryCampaignResult* reference_;
  static CampaignDiagnostics* reference_diag_;
};

RevealAttack* CheckpointShard::attack_ = nullptr;
RecoveryCampaignResult* CheckpointShard::reference_ = nullptr;
CampaignDiagnostics* CheckpointShard::reference_diag_ = nullptr;

TEST_F(CheckpointShard, UninterruptedCheckpointedRunMatchesPlainCampaign) {
  for (const std::size_t workers : {0u, 2u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CampaignRunner runner(workers);
    CheckpointOptions options;
    options.path = temp_path("plain_w" + std::to_string(workers) + ".ckpt");
    options.batch_size = 3;  // uneven final batch on purpose
    std::remove(options.path.c_str());
    const CheckpointedCampaignResult result = run_recovery_campaign_checkpointed(
        runner, *attack_, degraded_config(), kBaseSeed, kCaptures, HintPolicy{},
        paper_params(), options);
    ASSERT_TRUE(result.complete);
    EXPECT_FALSE(result.resumed);
    EXPECT_EQ(result.processed_this_call, kCaptures);
    expect_matches_reference(result.report, result.hint_totals, result.hints,
                             result.diagnostics.registry, result.diagnostics.confusion);
    std::ifstream leftover(options.path);
    EXPECT_FALSE(leftover.good());  // checkpoint removed on completion
  }
}

TEST_F(CheckpointShard, KillAndResumeIsByteIdentical) {
  // Simulated kill: each call may only run one batch, then "dies"; a fresh
  // call (fresh runner — nothing survives but the checkpoint file) resumes.
  CheckpointOptions options;
  options.path = temp_path("kill_resume.ckpt");
  options.batch_size = 3;
  options.max_batches_per_call = 1;
  std::remove(options.path.c_str());

  std::size_t calls = 0;
  CheckpointedCampaignResult result;
  do {
    CampaignRunner runner(calls % 2 == 0 ? 0 : 2);  // worker count varies too
    result = run_recovery_campaign_checkpointed(runner, *attack_, degraded_config(),
                                                kBaseSeed, kCaptures, HintPolicy{},
                                                paper_params(), options);
    ++calls;
    ASSERT_LE(calls, kCaptures + 1) << "resume made no progress";
    if (!result.complete) {
      EXPECT_EQ(result.processed_this_call, std::min<std::uint64_t>(3, kCaptures));
      EXPECT_EQ(result.resumed, calls > 1);
    }
  } while (!result.complete);
  EXPECT_EQ(calls, (kCaptures + 2) / 3);
  expect_matches_reference(result.report, result.hint_totals, result.hints,
                           result.diagnostics.registry, result.diagnostics.confusion);
}

TEST_F(CheckpointShard, BatchSizeDoesNotChangeAnyOutputByte) {
  for (const std::size_t batch : {1u, 5u, 64u}) {
    SCOPED_TRACE("batch=" + std::to_string(batch));
    CampaignRunner runner(0);
    CheckpointOptions options;
    options.path = temp_path("batch" + std::to_string(batch) + ".ckpt");
    options.batch_size = batch;
    std::remove(options.path.c_str());
    const CheckpointedCampaignResult result = run_recovery_campaign_checkpointed(
        runner, *attack_, degraded_config(), kBaseSeed, kCaptures, HintPolicy{},
        paper_params(), options);
    ASSERT_TRUE(result.complete);
    expect_matches_reference(result.report, result.hint_totals, result.hints,
                             result.diagnostics.registry, result.diagnostics.confusion);
  }
}

TEST_F(CheckpointShard, StaleCheckpointFromAnotherScheduleIsRejected) {
  CheckpointOptions options;
  options.path = temp_path("stale.ckpt");
  options.batch_size = 3;
  options.max_batches_per_call = 1;  // leave a checkpoint behind
  std::remove(options.path.c_str());
  CampaignRunner runner(0);
  const CheckpointedCampaignResult partial = run_recovery_campaign_checkpointed(
      runner, *attack_, degraded_config(), kBaseSeed, kCaptures, HintPolicy{},
      paper_params(), options);
  ASSERT_FALSE(partial.complete);

  // Same path, different base seed -> digest mismatch, loud failure.
  EXPECT_THROW((void)run_recovery_campaign_checkpointed(
                   runner, *attack_, degraded_config(), kBaseSeed + 1, kCaptures,
                   HintPolicy{}, paper_params(), options),
               std::runtime_error);
  // Different capture-shaping config too.
  CampaignConfig other = degraded_config();
  other.faults.glitch_count = 0;
  EXPECT_THROW((void)run_recovery_campaign_checkpointed(runner, *attack_, other,
                                                        kBaseSeed, kCaptures,
                                                        HintPolicy{}, paper_params(),
                                                        options),
               std::runtime_error);
  std::remove(options.path.c_str());
}

TEST(ShardRange, CeilSplitCoversTheScheduleContiguously) {
  for (const std::uint64_t total : {0u, 1u, 7u, 8u, 9u, 100u}) {
    for (const std::size_t shards : {1u, 2u, 3u, 4u, 13u}) {
      std::uint64_t cursor = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = shard_range(total, shards, s);
        EXPECT_EQ(begin, cursor);
        EXPECT_LE(end, total);
        EXPECT_GE(end, begin);
        cursor = end;
      }
      EXPECT_EQ(cursor, total) << "total=" << total << " shards=" << shards;
    }
  }
  EXPECT_THROW((void)shard_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)shard_range(10, 2, 2), std::out_of_range);
}

TEST_F(CheckpointShard, ShardCountDoesNotChangeAnyOutputByte) {
  for (const std::size_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardOptions options;
    options.shards = shards;
    options.work_dir = ::testing::TempDir();
    options.workers_per_shard = shards == 2 ? 2 : 0;  // mix worker counts in
    options.in_process = true;
    const ShardedCampaignResult result =
        run_sharded_campaign(*attack_, degraded_config(), kBaseSeed, kCaptures,
                             HintPolicy{}, paper_params(), options);
    expect_matches_reference(result.report, result.hint_totals, result.hints,
                             result.diagnostics.registry, result.diagnostics.confusion);
  }
}

TEST_F(CheckpointShard, ForkedShardsMatchInProcessShards) {
#ifdef REVEAL_FORCE_IN_PROCESS_SHARDS
  GTEST_SKIP() << "fork-based sharding is disabled under this sanitizer config";
#else
  ShardOptions options;
  options.shards = 2;
  options.work_dir = ::testing::TempDir();
  options.workers_per_shard = 0;  // children stay single-threaded
  options.in_process = false;
  const ShardedCampaignResult result =
      run_sharded_campaign(*attack_, degraded_config(), kBaseSeed, kCaptures,
                           HintPolicy{}, paper_params(), options);
  expect_matches_reference(result.report, result.hint_totals, result.hints,
                           result.diagnostics.registry, result.diagnostics.confusion);
#endif
}

TEST_F(CheckpointShard, CorpusReplayMatchesLiveCampaign) {
  // Capture the schedule into a corpus, then run the recovery campaign off
  // the stored traces: per-capture outputs must match the live campaign
  // (the corpus path has no acquisition-side diagnostics, so the identity
  // here is captures + hints + report, not the registry).
  const std::string path = temp_path("replay.rvlc");
  const CampaignConfig cfg = degraded_config();
  {
    CampaignRunner runner(2);
    corpus::CorpusWriter writer = corpus::CorpusWriter::create(path);
    append_campaign_captures(writer, runner, cfg,
                             CampaignRunner::stream_seeds(kBaseSeed, kCaptures));
    writer.close();
  }
  corpus::CorpusReader corpus(path);
  ASSERT_EQ(corpus.size(), kCaptures);

  for (const std::size_t workers : {0u, 2u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    CampaignRunner runner(workers);
    const RecoveryCampaignResult result = run_recovery_campaign_on_corpus(
        runner, *attack_, corpus, cfg.n, cfg.segmentation, HintPolicy{},
        paper_params());
    expect_reports_identical(result.report, reference_->report);
    EXPECT_EQ(result.hints, reference_->hints);
    ASSERT_EQ(result.captures.size(), reference_->captures.size());
    for (std::size_t i = 0; i < result.captures.size(); ++i) {
      EXPECT_EQ(result.captures[i].segmentation.status,
                reference_->captures[i].segmentation.status);
      EXPECT_EQ(result.captures[i].segmentation.burst_consistency,
                reference_->captures[i].segmentation.burst_consistency);
      ASSERT_EQ(result.captures[i].guesses.size(), reference_->captures[i].guesses.size());
    }
  }
}

TEST_F(CheckpointShard, ShardedCorpusIsByteIdenticalForEveryShardCount) {
  const CampaignConfig cfg = degraded_config();
  std::vector<std::string> built;
  for (const std::size_t shards : {1u, 2u, 4u}) {
    ShardOptions options;
    options.shards = shards;
    options.work_dir = ::testing::TempDir();
    options.in_process = true;
    const std::string dest = temp_path("sharded_" + std::to_string(shards) + ".rvlc");
    build_sharded_corpus(dest, cfg, kBaseSeed, kCaptures, options);
    built.push_back(dest);
  }
  auto read_all = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string reference_bytes = read_all(built[0]);
  ASSERT_FALSE(reference_bytes.empty());
  for (std::size_t i = 1; i < built.size(); ++i) {
    EXPECT_EQ(read_all(built[i]), reference_bytes) << built[i];
  }
  // And the labels are the global capture indices, shard-count independent.
  corpus::CorpusReader reader(built.back());
  ASSERT_EQ(reader.size(), kCaptures);
  for (std::size_t i = 0; i < kCaptures; ++i)
    EXPECT_EQ(reader[i].label, static_cast<std::int32_t>(i));
}

}  // namespace
