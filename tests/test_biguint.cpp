// Tests for the multi-precision unsigned integer used in CRT composition
// and BFV decryption rounding.

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/rng.hpp"
#include "seal/biguint.hpp"

using reveal::seal::BigUInt;

namespace {
__extension__ typedef unsigned __int128 u128;

BigUInt from_u128(u128 v) {
  BigUInt out(static_cast<std::uint64_t>(v >> 64));
  out <<= 64;
  out += BigUInt(static_cast<std::uint64_t>(v));
  return out;
}

u128 to_u128(const BigUInt& v) {
  u128 out = 0;
  const auto& limbs = v.limbs();
  if (limbs.size() > 2) throw std::runtime_error("overflow in test helper");
  if (limbs.size() >= 2) out = static_cast<u128>(limbs[1]) << 64;
  if (!limbs.empty()) out |= limbs[0];
  return out;
}
}  // namespace

TEST(BigUInt, ZeroBehaviour) {
  BigUInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.bit_count(), 0u);
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_EQ(z.low_word(), 0u);
  BigUInt z2(0);
  EXPECT_TRUE(z2.is_zero());
  EXPECT_EQ(z.compare(z2), 0);
}

TEST(BigUInt, AddSubRandomized) {
  reveal::num::Xoshiro256StarStar rng(101);
  for (int i = 0; i < 1000; ++i) {
    const u128 a = (static_cast<u128>(rng()) << 32) | rng();
    const u128 b = (static_cast<u128>(rng()) << 32) | rng();
    const u128 lo = a < b ? a : b;
    const u128 hi = a < b ? b : a;
    EXPECT_EQ(to_u128(from_u128(a) + from_u128(b)), a + b);
    EXPECT_EQ(to_u128(from_u128(hi) - from_u128(lo)), hi - lo);
  }
}

TEST(BigUInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(3) -= BigUInt(5), std::domain_error);
}

TEST(BigUInt, MultiplyRandomized) {
  reveal::num::Xoshiro256StarStar rng(102);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    EXPECT_EQ(to_u128(BigUInt(a) * BigUInt(b)), static_cast<u128>(a) * b);
    EXPECT_EQ(to_u128(BigUInt(a) * b), static_cast<u128>(a) * b);
  }
}

TEST(BigUInt, Shifts) {
  BigUInt v(1);
  v <<= 100;
  EXPECT_EQ(v.bit_count(), 101u);
  EXPECT_TRUE(v.bit(100));
  EXPECT_FALSE(v.bit(99));
  v >>= 100;
  EXPECT_EQ(to_u128(v), 1u);
  v >>= 10;  // shifts to zero
  EXPECT_TRUE(v.is_zero());
}

TEST(BigUInt, CompareOrdering) {
  EXPECT_LT(BigUInt(3), BigUInt(5));
  EXPECT_GT(BigUInt(5), BigUInt(3));
  BigUInt big(1);
  big <<= 64;
  EXPECT_GT(big, BigUInt(~std::uint64_t{0}));
}

TEST(BigUInt, DivmodRandomized) {
  reveal::num::Xoshiro256StarStar rng(103);
  for (int i = 0; i < 300; ++i) {
    const u128 a = (static_cast<u128>(rng()) << 64) | rng();
    const u128 b = (static_cast<u128>(rng() % 0xFFFFFFFFull) + 1);
    const auto [q, r] = BigUInt::divmod(from_u128(a), from_u128(b));
    EXPECT_EQ(to_u128(q), a / b);
    EXPECT_EQ(to_u128(r), a % b);
  }
}

TEST(BigUInt, DivmodByZeroThrows) {
  EXPECT_THROW(BigUInt::divmod(BigUInt(1), BigUInt(0)), std::domain_error);
}

TEST(BigUInt, ModWord) {
  reveal::num::Xoshiro256StarStar rng(104);
  for (int i = 0; i < 300; ++i) {
    const u128 a = (static_cast<u128>(rng()) << 64) | rng();
    const std::uint64_t m = rng() | 1;
    EXPECT_EQ(from_u128(a).mod_word(m), static_cast<std::uint64_t>(a % m));
  }
  EXPECT_THROW((void)BigUInt(5).mod_word(0), std::domain_error);
}

TEST(BigUInt, ToStringKnownValues) {
  EXPECT_EQ(BigUInt(12345).to_string(), "12345");
  BigUInt v(1);
  v <<= 64;  // 2^64
  EXPECT_EQ(v.to_string(), "18446744073709551616");
}

TEST(BigUInt, ToDoubleApproximates) {
  BigUInt v(1);
  v <<= 80;
  EXPECT_NEAR(v.to_double(), std::ldexp(1.0, 80), std::ldexp(1.0, 30));
}

TEST(BigUInt, CompositeChain) {
  // (2^64 - 1) * 132120577 + 42, then divide back out.
  const BigUInt q(132120577);
  const BigUInt x = BigUInt(~std::uint64_t{0}) * q + BigUInt(42);
  const auto [quot, rem] = BigUInt::divmod(x, q);
  EXPECT_EQ(quot, BigUInt(~std::uint64_t{0}));
  EXPECT_EQ(rem, BigUInt(42));
}
