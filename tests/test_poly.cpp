// RNS polynomial operations.

#include <gtest/gtest.h>

#include "numeric/rng.hpp"
#include "seal/modarith.hpp"
#include "seal/poly.hpp"

namespace seal = reveal::seal;

namespace {

seal::Poly random_poly(std::size_t n, const std::vector<seal::Modulus>& moduli,
                       reveal::num::Xoshiro256StarStar& rng) {
  seal::Poly p(n, moduli.size());
  for (std::size_t j = 0; j < moduli.size(); ++j) {
    for (std::size_t i = 0; i < n; ++i) p.at(i, j) = rng() % moduli[j].value();
  }
  return p;
}

}  // namespace

class PolyOpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    moduli_ = {seal::find_ntt_prime(20, kN), seal::find_ntt_prime(21, kN)};
    for (const auto& q : moduli_) tables_.emplace_back(kN, q);
  }
  static constexpr std::size_t kN = 64;
  std::vector<seal::Modulus> moduli_;
  std::vector<seal::NttTables> tables_;
  reveal::num::Xoshiro256StarStar rng_{123};
};

TEST_F(PolyOpsTest, LayoutMatchesSeal) {
  seal::Poly p(kN, 2);
  p.at(3, 1) = 99;
  // SEAL layout: poly[i + j*coeff_count].
  EXPECT_EQ(p.data()[3 + 1 * kN], 99u);
  EXPECT_EQ(p.component(1)[3], 99u);
}

TEST_F(PolyOpsTest, AddSubRoundtrip) {
  const seal::Poly a = random_poly(kN, moduli_, rng_);
  const seal::Poly b = random_poly(kN, moduli_, rng_);
  seal::Poly sum, back;
  seal::polyops::add(a, b, moduli_, sum);
  seal::polyops::sub(sum, b, moduli_, back);
  EXPECT_EQ(back, a);
}

TEST_F(PolyOpsTest, NegateTwiceIsIdentity) {
  const seal::Poly a = random_poly(kN, moduli_, rng_);
  seal::Poly n1, n2;
  seal::polyops::negate(a, moduli_, n1);
  seal::polyops::negate(n1, moduli_, n2);
  EXPECT_EQ(n2, a);
  // a + (-a) = 0.
  seal::Poly sum;
  seal::polyops::add(a, n1, moduli_, sum);
  EXPECT_EQ(sum, seal::Poly(kN, moduli_.size()));
}

TEST_F(PolyOpsTest, ScalarMultiplyMatchesRepeatedAdd) {
  const seal::Poly a = random_poly(kN, moduli_, rng_);
  seal::Poly three_a, acc;
  seal::polyops::multiply_scalar(a, 3, moduli_, three_a);
  seal::polyops::add(a, a, moduli_, acc);
  seal::polyops::add(acc, a, moduli_, acc);
  EXPECT_EQ(three_a, acc);
}

TEST_F(PolyOpsTest, MultiplyNttMatchesSchoolbookPerComponent) {
  const seal::Poly a = random_poly(kN, moduli_, rng_);
  const seal::Poly b = random_poly(kN, moduli_, rng_);
  seal::Poly c;
  seal::polyops::multiply_ntt(a, b, tables_, c);
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    const auto& q = moduli_[j];
    for (std::size_t k = 0; k < kN; ++k) {
      std::uint64_t expect = 0;
      for (std::size_t i = 0; i < kN; ++i) {
        const std::size_t deg = i <= k ? k - i : kN + k - i;
        // coefficient of x^k gets a_i * b_{k-i} (+) and -a_i*b_{n+k-i}.
        const std::uint64_t prod = seal::mul_mod(a.at(i, j), b.at(deg, j), q);
        if (i <= k) expect = seal::add_mod(expect, prod, q);
        else expect = seal::sub_mod(expect, prod, q);
      }
      ASSERT_EQ(c.at(k, j), expect) << "j=" << j << " k=" << k;
    }
  }
}

TEST_F(PolyOpsTest, MultiplyByOneIsIdentity) {
  const seal::Poly a = random_poly(kN, moduli_, rng_);
  seal::Poly one(kN, moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) one.at(0, j) = 1;
  seal::Poly c;
  seal::polyops::multiply_ntt(a, one, tables_, c);
  EXPECT_EQ(c, a);
}

TEST_F(PolyOpsTest, MultiplyByXShiftsNegacyclically) {
  seal::Poly a(kN, moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) a.at(kN - 1, j) = 1;  // x^{n-1}
  seal::Poly x(kN, moduli_.size());
  for (std::size_t j = 0; j < moduli_.size(); ++j) x.at(1, j) = 1;  // x
  seal::Poly c;
  seal::polyops::multiply_ntt(a, x, tables_, c);
  // x^n = -1.
  for (std::size_t j = 0; j < moduli_.size(); ++j) {
    EXPECT_EQ(c.at(0, j), moduli_[j].value() - 1);
    for (std::size_t i = 1; i < kN; ++i) EXPECT_EQ(c.at(i, j), 0u);
  }
}

TEST_F(PolyOpsTest, ShapeMismatchThrows) {
  seal::Poly a(kN, 2), b(kN, 1), out;
  EXPECT_THROW(seal::polyops::add(a, b, moduli_, out), std::invalid_argument);
  std::vector<seal::Modulus> one_mod = {moduli_[0]};
  EXPECT_THROW(seal::polyops::add(a, a, one_mod, out), std::invalid_argument);
}

TEST_F(PolyOpsTest, InfinityNormCentered) {
  const seal::Modulus q = moduli_[0];
  seal::Poly p(kN, 1);
  p.at(0, 0) = 5;
  p.at(1, 0) = q.value() - 7;  // -7
  EXPECT_EQ(seal::polyops::infinity_norm_centered(p, q), 7u);
  seal::Poly two(kN, 2);
  EXPECT_THROW((void)seal::polyops::infinity_norm_centered(two, q), std::invalid_argument);
}
