// Unit tests for the numeric substrate: RNG, matrices, statistics and
// distribution helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "numeric/bits.hpp"
#include "numeric/distributions.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"

namespace num = reveal::num;

TEST(Bits, HammingWeight) {
  EXPECT_EQ(num::hamming_weight(std::uint32_t{0}), 0);
  EXPECT_EQ(num::hamming_weight(std::uint32_t{1}), 1);
  EXPECT_EQ(num::hamming_weight(std::uint32_t{0xFFFFFFFFu}), 32);
  EXPECT_EQ(num::hamming_weight(std::uint64_t{0xFFFFFFFFFFFFFFFFull}), 64);
  EXPECT_EQ(num::hamming_weight(std::uint32_t{0b1011}), 3);
}

TEST(Bits, HammingDistance) {
  EXPECT_EQ(num::hamming_distance(std::uint32_t{0}, std::uint32_t{0}), 0);
  EXPECT_EQ(num::hamming_distance(std::uint32_t{0b1100}, std::uint32_t{0b1010}), 2);
  EXPECT_EQ(num::hamming_distance(std::uint32_t{0}, ~std::uint32_t{0}), 32);
}

TEST(Rng, DeterministicPerSeed) {
  num::Xoshiro256StarStar a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  bool differs = false;
  num::Xoshiro256StarStar a2(42);
  for (int i = 0; i < 100; ++i) {
    if (a2() != c()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBelowRespectsBound) {
  num::Xoshiro256StarStar rng(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(17), 17u);
  }
  EXPECT_EQ(rng.uniform_below(1), 0u);
}

TEST(Rng, UniformIntCoversRange) {
  num::Xoshiro256StarStar rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  num::Xoshiro256StarStar rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, GaussianMoments) {
  num::Xoshiro256StarStar rng(11);
  num::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  num::Xoshiro256StarStar rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  num::Xoshiro256StarStar a(99);
  num::Xoshiro256StarStar child = a.fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Matrix, IdentityAndDiagonal) {
  const auto id = num::Matrix::identity(3);
  EXPECT_EQ(id(0, 0), 1.0);
  EXPECT_EQ(id(0, 1), 0.0);
  const auto d = num::Matrix::diagonal({2.0, 5.0});
  EXPECT_EQ(d(1, 1), 5.0);
  EXPECT_EQ(d(1, 0), 0.0);
}

TEST(Matrix, MultiplyMatchesManual) {
  num::Matrix a(2, 3), b(3, 2);
  double v = 1.0;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const num::Matrix p = a * b;
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  EXPECT_EQ(p(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_EQ(p(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Matrix, ShapeMismatchThrows) {
  num::Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
  num::Matrix c(2, 2);
  EXPECT_THROW(a + c, std::invalid_argument);
  EXPECT_THROW((void)a.at(5, 0), std::out_of_range);
}

TEST(Matrix, CholeskySolveRoundtrip) {
  // SPD matrix A = L0 * L0^T.
  num::Matrix a(3, 3);
  const double entries[3][3] = {{4, 2, 1}, {2, 5, 3}, {1, 3, 6}};
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = entries[r][c];
  const auto chol = num::cholesky(a);
  ASSERT_TRUE(chol.ok);
  const std::vector<double> x_true = {1.0, -2.0, 0.5};
  const std::vector<double> b = a.apply(x_true);
  const std::vector<double> x = num::cholesky_solve(chol.lower, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Matrix, CholeskyRejectsIndefinite) {
  num::Matrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 5.0;
  a(1, 0) = 5.0;
  a(1, 1) = 1.0;  // indefinite
  EXPECT_FALSE(num::cholesky(a).ok);
  EXPECT_THROW(num::log_det_spd(a), std::domain_error);
}

TEST(Matrix, LogDetMatchesKnown) {
  const auto d = num::Matrix::diagonal({2.0, 3.0, 4.0});
  EXPECT_NEAR(num::log_det_spd(d), std::log(24.0), 1e-12);
}

TEST(Matrix, InvertSpd) {
  num::Matrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const num::Matrix inv = num::invert_spd(a);
  const num::Matrix prod = a * inv;
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
}

TEST(Matrix, DotAndNorm) {
  EXPECT_EQ(num::dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_NEAR(num::norm({3, 4}), 5.0, 1e-12);
  EXPECT_THROW(num::dot({1}, {1, 2}), std::invalid_argument);
}

TEST(Stats, NeumaierSumTracksLongDoubleOracle) {
  // 10k heterogeneous log-volume-sized contributions: the compensated sum
  // must stay within a few ulp of a long double accumulation, where a naive
  // double sum drifts measurably.
  num::Xoshiro256StarStar rng(9);
  num::NeumaierSum sum;
  long double oracle = 0.0L;
  double naive = 0.0;
  for (int i = 0; i < 10000; ++i) {
    // Alternate large and tiny addends so low bits are actually at risk.
    const double v = (i % 2 == 0) ? rng.uniform_double() * 1e8
                                  : rng.uniform_double() * 1e-8;
    sum.add(v);
    oracle += static_cast<long double>(v);
    naive += v;
  }
  const double compensated_err =
      std::fabs(static_cast<double>(static_cast<long double>(sum.value()) - oracle));
  const double naive_err =
      std::fabs(static_cast<double>(static_cast<long double>(naive) - oracle));
  // The total is ~2.5e11, so one double ulp is ~3e-5; the compensated sum
  // must land within a few ulp while the naive sum drifts by dozens.
  EXPECT_LE(compensated_err, 1e-4);
  EXPECT_LE(compensated_err, naive_err);
}

TEST(Stats, NeumaierSumCancellation) {
  // Classic compensation demo: 1 + 1e100 - 1e100 == 1 only with the
  // correction term folded back in.
  num::NeumaierSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(-1e100);
  EXPECT_EQ(sum.value(), 1.0);
  num::NeumaierSum seeded(2.5);
  seeded.add(0.5);
  EXPECT_EQ(seeded.value(), 3.0);
}

TEST(Stats, RunningMatchesBatch) {
  num::Xoshiro256StarStar rng(3);
  std::vector<double> xs;
  num::RunningStats rs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(1.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), num::mean_of(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), num::variance_of(xs), 1e-9);
}

TEST(Stats, MergeEquivalentToSequential) {
  num::Xoshiro256StarStar rng(4);
  num::RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_double();
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, RunningCovarianceMatchesManual) {
  // Perfectly correlated pair: cov = var.
  num::RunningCovariance cov(2);
  for (int i = 0; i < 10; ++i) {
    const double x = i;
    cov.add({x, 2.0 * x});
  }
  const num::Matrix c = cov.covariance();
  EXPECT_NEAR(c(0, 1), 2.0 * c(0, 0), 1e-9);
  EXPECT_NEAR(c(1, 1), 4.0 * c(0, 0), 1e-9);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  const std::vector<double> c = {4, 3, 2, 1};
  EXPECT_NEAR(num::pearson_correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(num::pearson_correlation(a, c), -1.0, 1e-12);
}

TEST(Stats, HistogramBinsAndClamping) {
  num::Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100.0);  // clamps into first bin
  h.add(100.0);   // clamps into last bin
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
}

TEST(Distributions, NormalPdfCdf) {
  EXPECT_NEAR(num::normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(num::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(num::normal_cdf(1.96), 0.975, 1e-3);
}

TEST(Distributions, RoundedClippedPmfSumsToOne) {
  double total = 0.0;
  for (int k = -45; k <= 45; ++k) total += num::rounded_clipped_normal_pmf(k, 3.19, 41.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Outside the clip: zero.
  EXPECT_EQ(num::rounded_clipped_normal_pmf(42, 3.19, 41.0), 0.0);
}

TEST(Distributions, ZeroProbabilityMatchesInterval) {
  const double p0 = num::zero_probability(3.19, 41.0);
  // P(|X| <= 0.5) for sigma = 3.19: about 0.1245.
  EXPECT_NEAR(p0, 0.1245, 0.002);
}

TEST(Distributions, PositiveTailMoments) {
  const double mean = num::positive_tail_mean(3.19, 41.0);
  const double var = num::positive_tail_variance(3.19, 41.0);
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 3.5);
  EXPECT_GT(var, 2.0);
  EXPECT_LT(var, 6.0);
}

TEST(Distributions, NormalizeProbabilities) {
  const auto p = num::normalize_probabilities({1.0, 3.0});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
  const auto u = num::normalize_probabilities({0.0, 0.0, 0.0});
  EXPECT_NEAR(u[1], 1.0 / 3.0, 1e-12);
  EXPECT_THROW(num::normalize_probabilities({-1.0, 2.0}), std::invalid_argument);
}

TEST(Distributions, SoftmaxPosterior) {
  const auto p = num::log_scores_to_posterior({0.0, std::log(3.0)});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
  // Stability with large magnitudes.
  const auto q = num::log_scores_to_posterior({-1e6, -1e6 + std::log(2.0)});
  EXPECT_NEAR(q[1], 2.0 / 3.0, 1e-9);
}

TEST(Distributions, EntropyBits) {
  EXPECT_NEAR(num::entropy_bits({0.5, 0.5}), 1.0, 1e-12);
  EXPECT_NEAR(num::entropy_bits({1.0, 0.0}), 0.0, 1e-12);
}

TEST(Distributions, DistributionMoments) {
  const std::vector<int> support = {-1, 0, 1};
  const std::vector<double> probs = {0.25, 0.5, 0.25};
  EXPECT_NEAR(num::distribution_mean(support, probs), 0.0, 1e-12);
  EXPECT_NEAR(num::distribution_variance(support, probs), 0.5, 1e-12);
}
