// End-to-end BFV scheme tests: context validation, encrypt/decrypt
// roundtrips, homomorphic operations, encoders, noise budget.

#include <gtest/gtest.h>

#include <algorithm>

#include "seal/decryptor.hpp"
#include "seal/encoder.hpp"
#include "seal/encryption_params.hpp"
#include "seal/encryptor.hpp"
#include "seal/evaluator.hpp"
#include "seal/keys.hpp"

namespace seal = reveal::seal;

namespace {

struct BfvFixture {
  explicit BfvFixture(seal::EncryptionParameters parms, std::uint64_t seed = 1234)
      : ctx(std::move(parms)), rng(seed), keygen(ctx, rng),
        encryptor(ctx, keygen.public_key()), decryptor(ctx, keygen.secret_key()) {}
  seal::Context ctx;
  seal::StandardRandomGenerator rng;
  seal::KeyGenerator keygen;
  seal::Encryptor encryptor;
  seal::Decryptor decryptor;
};

}  // namespace

TEST(Context, ValidatesParameters) {
  seal::EncryptionParameters p;
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);  // nothing set

  p = seal::EncryptionParameters::toy_256();
  p.set_poly_modulus_degree(100);  // not a power of two
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);

  p = seal::EncryptionParameters::toy_256();
  p.set_coeff_modulus({seal::Modulus(1048573)});  // prime but not ≡ 1 mod 512
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);

  p = seal::EncryptionParameters::toy_256();
  const auto q = p.coeff_modulus()[0];
  p.set_coeff_modulus({q, q});  // duplicate moduli
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);

  p = seal::EncryptionParameters::toy_256();
  p.set_plain_modulus(p.coeff_modulus()[0].value());  // t == q
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);

  p = seal::EncryptionParameters::toy_256();
  p.set_noise_standard_deviation(-1.0);
  EXPECT_THROW(seal::Context{p}, std::invalid_argument);
}

TEST(Context, DeltaComputation) {
  const seal::Context ctx(seal::EncryptionParameters::seal_128_1024());
  // Delta = floor(q / t) = floor(132120577 / 256).
  EXPECT_EQ(ctx.delta().low_word(), 132120577ULL / 256);
  EXPECT_EQ(ctx.delta_mod_qj()[0], 132120577ULL / 256 % 132120577ULL);
  EXPECT_EQ(ctx.total_coeff_modulus().low_word(), 132120577ULL);
}

TEST(Bfv, EncryptDecryptRoundtripToy) {
  BfvFixture f(seal::EncryptionParameters::toy_256());
  const seal::Plaintext m(std::vector<std::uint64_t>{1, 2, 3, 63, 0, 7});
  const seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng);
  EXPECT_EQ(f.decryptor.decrypt(ct), m);
}

TEST(Bfv, EncryptDecryptRoundtripPaperParams) {
  BfvFixture f(seal::EncryptionParameters::seal_128_1024());
  std::vector<std::uint64_t> msg(1024);
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = (i * 37 + 11) % 256;
  const seal::Plaintext m(msg);
  const seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng);
  EXPECT_EQ(f.decryptor.decrypt(ct), m);
}

TEST(Bfv, EncryptDecryptMultiModulus) {
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(256);
  p.set_coeff_modulus(seal::find_ntt_primes(25, 256, 2));
  p.set_plain_modulus(64);
  BfvFixture f(std::move(p));
  const seal::Plaintext m(std::vector<std::uint64_t>{5, 0, 63, 1});
  const seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng);
  EXPECT_EQ(f.decryptor.decrypt(ct), m);
}

TEST(Bfv, PatchedSamplerAlsoDecrypts) {
  seal::EncryptionParameters parms = seal::EncryptionParameters::toy_256();
  const seal::Context ctx(parms);
  seal::StandardRandomGenerator rng(99);
  seal::KeyGenerator keygen(ctx, rng);
  seal::Encryptor enc(ctx, keygen.public_key(), seal::SamplerVariant::kPatchedV36);
  seal::Decryptor dec(ctx, keygen.secret_key());
  const seal::Plaintext m(std::vector<std::uint64_t>{9, 8, 7});
  EXPECT_EQ(dec.decrypt(enc.encrypt(m, rng)), m);
}

TEST(Bfv, WitnessReproducesCiphertext) {
  BfvFixture f(seal::EncryptionParameters::toy_256());
  const seal::Plaintext m(std::vector<std::uint64_t>{4, 5, 6});
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng, &witness);
  const seal::Ciphertext ct2 = f.encryptor.encrypt_with_witness(m, witness);
  EXPECT_EQ(ct[0], ct2[0]);
  EXPECT_EQ(ct[1], ct2[1]);
}

TEST(Bfv, WitnessNoiseBounded) {
  BfvFixture f(seal::EncryptionParameters::toy_256());
  seal::EncryptionWitness witness;
  (void)f.encryptor.encrypt(seal::Plaintext(std::uint64_t{1}), f.rng, &witness);
  for (const auto v : witness.e1) EXPECT_LE(std::llabs(v), 41);
  for (const auto v : witness.e2) EXPECT_LE(std::llabs(v), 41);
}

TEST(Bfv, FreshNoiseBudgetPositiveAndDecreasing) {
  BfvFixture f(seal::EncryptionParameters::seal_128_1024());
  const seal::Plaintext m(std::vector<std::uint64_t>{1, 2, 3});
  seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng);
  const int fresh = f.decryptor.invariant_noise_budget(ct);
  EXPECT_GT(fresh, 0);

  seal::Evaluator eval(f.ctx);
  const seal::Ciphertext ct2 = f.encryptor.encrypt(m, f.rng);
  eval.add_inplace(ct, ct2);
  EXPECT_LE(f.decryptor.invariant_noise_budget(ct), fresh);
}

TEST(Evaluator, HomomorphicAddSubNegate) {
  BfvFixture f(seal::EncryptionParameters::toy_256());
  const seal::Plaintext a(std::vector<std::uint64_t>{10, 20});
  const seal::Plaintext b(std::vector<std::uint64_t>{5, 7});
  seal::Evaluator eval(f.ctx);

  seal::Ciphertext ca = f.encryptor.encrypt(a, f.rng);
  const seal::Ciphertext cb = f.encryptor.encrypt(b, f.rng);
  eval.add_inplace(ca, cb);
  EXPECT_EQ(f.decryptor.decrypt(ca), seal::Plaintext(std::vector<std::uint64_t>{15, 27}));

  eval.sub_inplace(ca, cb);
  EXPECT_EQ(f.decryptor.decrypt(ca), a);

  eval.negate_inplace(ca);
  // -10 mod 64 = 54, -20 mod 64 = 44.
  EXPECT_EQ(f.decryptor.decrypt(ca), seal::Plaintext(std::vector<std::uint64_t>{54, 44}));
}

TEST(Evaluator, AddPlainAndMultiplyPlain) {
  BfvFixture f(seal::EncryptionParameters::toy_256());
  seal::Evaluator eval(f.ctx);
  seal::Ciphertext ct = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{3}), f.rng);
  eval.add_plain_inplace(ct, seal::Plaintext(std::uint64_t{4}));
  EXPECT_EQ(f.decryptor.decrypt(ct), seal::Plaintext(std::uint64_t{7}));
  eval.multiply_plain_inplace(ct, seal::Plaintext(std::uint64_t{5}));
  EXPECT_EQ(f.decryptor.decrypt(ct), seal::Plaintext(std::uint64_t{35}));
}

TEST(Evaluator, MultiplyAndRelinearize) {
  BfvFixture f(seal::EncryptionParameters::toy_mul_64(), 777);
  seal::Evaluator eval(f.ctx);
  const seal::Ciphertext ca = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{6}), f.rng);
  const seal::Ciphertext cb = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{7}), f.rng);
  seal::Ciphertext prod = eval.multiply(ca, cb);
  EXPECT_EQ(prod.size(), 3u);
  EXPECT_EQ(f.decryptor.decrypt(prod), seal::Plaintext(std::uint64_t{42}));

  seal::RelinKeys rk = f.keygen.create_relin_keys(8);
  eval.relinearize_inplace(prod, rk);
  EXPECT_EQ(prod.size(), 2u);
  EXPECT_EQ(f.decryptor.decrypt(prod), seal::Plaintext(std::uint64_t{42}));
}

TEST(Evaluator, MultiplyPolynomialMessages) {
  BfvFixture f(seal::EncryptionParameters::toy_mul_64(), 778);
  seal::Evaluator eval(f.ctx);
  // (1 + 2x) * (3 + x) = 3 + 7x + 2x^2.
  const seal::Plaintext a(std::vector<std::uint64_t>{1, 2});
  const seal::Plaintext b(std::vector<std::uint64_t>{3, 1});
  seal::Ciphertext prod =
      eval.multiply(f.encryptor.encrypt(a, f.rng), f.encryptor.encrypt(b, f.rng));
  EXPECT_EQ(f.decryptor.decrypt(prod),
            seal::Plaintext(std::vector<std::uint64_t>{3, 7, 2}));
}

TEST(Evaluator, SmallMultiModulusMultiplySquares) {
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(64);
  p.set_coeff_modulus(seal::find_ntt_primes(20, 64, 2));
  p.set_plain_modulus(17);
  BfvFixture f(std::move(p));
  seal::Evaluator eval(f.ctx);
  const seal::Ciphertext ct = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{4}), f.rng);
  seal::Ciphertext sq = eval.multiply(ct, ct);
  EXPECT_EQ(f.decryptor.decrypt(sq), seal::Plaintext(std::uint64_t{16}));
}

TEST(IntegerEncoder, Roundtrip) {
  const seal::Context ctx(seal::EncryptionParameters::toy_256());
  const seal::IntegerEncoder encoder(ctx);
  for (const std::uint64_t v : {0ULL, 1ULL, 2ULL, 255ULL, 12345ULL}) {
    EXPECT_EQ(encoder.decode(encoder.encode(v)), static_cast<std::int64_t>(v));
  }
}

TEST(IntegerEncoder, HomomorphicAddOnEncodings) {
  BfvFixture f(seal::EncryptionParameters::toy_256(), 555);
  const seal::IntegerEncoder encoder(f.ctx);
  seal::Evaluator eval(f.ctx);
  seal::Ciphertext ca = f.encryptor.encrypt(encoder.encode(20), f.rng);
  const seal::Ciphertext cb = f.encryptor.encrypt(encoder.encode(22), f.rng);
  eval.add_inplace(ca, cb);
  EXPECT_EQ(encoder.decode(f.decryptor.decrypt(ca)), 42);
}

TEST(BatchEncoder, RequiresCompatiblePlainModulus) {
  const seal::Context bad(seal::EncryptionParameters::toy_256());  // t = 64 not prime ≡ 1
  EXPECT_THROW(seal::BatchEncoder{bad}, std::invalid_argument);
}

TEST(BatchEncoder, SlotRoundtripAndSimdAdd) {
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(256);
  p.set_coeff_modulus({seal::find_ntt_prime(32, 256)});
  p.set_plain_modulus(12289);  // prime, 12288 = 24 * 512 => t ≡ 1 (mod 512)
  BfvFixture f(std::move(p), 321);
  const seal::BatchEncoder encoder(f.ctx);
  ASSERT_EQ(encoder.slot_count(), 256u);

  std::vector<std::uint64_t> va(256), vb(256);
  for (std::size_t i = 0; i < 256; ++i) {
    va[i] = (i * 7) % 12289;
    vb[i] = (i * 13 + 5) % 12289;
  }
  EXPECT_EQ(encoder.decode(encoder.encode(va)), va);

  seal::Evaluator eval(f.ctx);
  seal::Ciphertext ca = f.encryptor.encrypt(encoder.encode(va), f.rng);
  const seal::Ciphertext cb = f.encryptor.encrypt(encoder.encode(vb), f.rng);
  eval.add_inplace(ca, cb);
  const std::vector<std::uint64_t> sum = encoder.decode(f.decryptor.decrypt(ca));
  for (std::size_t i = 0; i < 256; ++i) {
    ASSERT_EQ(sum[i], (va[i] + vb[i]) % 12289) << i;
  }
}

// ---------------------------------------------------------------------------
// Galois automorphisms and homomorphic rotations.

namespace {

/// Plaintext-side reference: m(x^g) over R_t.
seal::Plaintext apply_galois_plain(const seal::Plaintext& plain, std::uint32_t g,
                                   std::size_t n, std::uint64_t t) {
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t i = 0; i < n && i < plain.coeff_count() + 0; ++i) {
    const std::uint64_t v = plain[i];
    if (v == 0) continue;
    const std::size_t exponent = (i * g) % (2 * n);
    if (exponent < n) out[exponent] = (out[exponent] + v) % t;
    else out[exponent - n] = (out[exponent - n] + t - (v % t)) % t;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return seal::Plaintext(out);
}

}  // namespace

TEST(Galois, PolyAutomorphismBasics) {
  const seal::Context ctx(seal::EncryptionParameters::toy_mul_64());
  const auto& moduli = ctx.coeff_modulus();
  seal::Poly p(64, 1);
  p.at(1, 0) = 1;  // p = x
  seal::Poly out;
  seal::polyops::apply_galois(p, 3, moduli, out);
  EXPECT_EQ(out.at(3, 0), 1u);  // x -> x^3
  // x^{63} -> x^{189 mod 128} = x^{61} with sign: 189 >= 64... 189-128=61 <64
  seal::Poly q(64, 1);
  q.at(63, 0) = 1;
  seal::polyops::apply_galois(q, 3, moduli, out);
  // 63*3 = 189 = 128 + 61 -> exponent 61 mod 128 => 61 < 64, but the wrap
  // through x^64 = -1 happened once (189 mod 128 = 61; 189 / 64 is odd).
  // Verify via roundtrip instead: applying g then g^{-1} is the identity.
  const std::uint32_t g = 3;
  std::uint32_t g_inv = 1;
  for (std::uint32_t k = 1; k < 128; k += 2) {
    if ((k * g) % 128 == 1) g_inv = k;
  }
  seal::Poly back;
  seal::polyops::apply_galois(out, g_inv, moduli, back);
  EXPECT_EQ(back, q);
}

TEST(Galois, RejectsEvenElements) {
  const seal::Context ctx(seal::EncryptionParameters::toy_mul_64());
  seal::Poly p(64, 1);
  seal::Poly out;
  EXPECT_THROW(seal::polyops::apply_galois(p, 2, ctx.coeff_modulus(), out),
               std::invalid_argument);
  EXPECT_THROW(seal::polyops::apply_galois(p, 129, ctx.coeff_modulus(), out),
               std::invalid_argument);
}

TEST(Galois, HomomorphicAutomorphismMatchesPlaintext) {
  BfvFixture f(seal::EncryptionParameters::toy_mul_64(), 909);
  seal::Evaluator eval(f.ctx);
  const std::uint32_t g = 3;
  const seal::GaloisKeys gk = f.keygen.create_galois_keys({g}, 8);

  const seal::Plaintext m(std::vector<std::uint64_t>{5, 1, 2, 0, 7});
  seal::Ciphertext ct = f.encryptor.encrypt(m, f.rng);
  eval.apply_galois_inplace(ct, g, gk);
  const seal::Plaintext expect =
      apply_galois_plain(m, g, f.ctx.n(), f.ctx.plain_modulus().value());
  EXPECT_EQ(f.decryptor.decrypt(ct), expect);
}

TEST(Galois, RotationStepsComposeAndPermuteSlots) {
  // Batching-compatible parameters: t prime, t ≡ 1 (mod 2n).
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(64);
  p.set_coeff_modulus({seal::find_ntt_prime(35, 64)});
  p.set_plain_modulus(257);  // 257 ≡ 1 (mod 128), prime
  BfvFixture f(std::move(p), 910);
  seal::Evaluator eval(f.ctx);
  const seal::BatchEncoder encoder(f.ctx);

  std::vector<std::uint64_t> values(64);
  for (std::size_t i = 0; i < 64; ++i) values[i] = i + 1;
  const std::uint32_t g = eval.galois_element_for_step(1);
  const seal::GaloisKeys gk = f.keygen.create_galois_keys({g}, 8);

  seal::Ciphertext ct = f.encryptor.encrypt(encoder.encode(values), f.rng);
  eval.apply_galois_inplace(ct, g, gk);
  const std::vector<std::uint64_t> rotated = encoder.decode(f.decryptor.decrypt(ct));

  // The automorphism permutes the slot values (a rotation in the standard
  // slot ordering; a permutation in ours — verify multiset preservation and
  // non-identity).
  std::vector<std::uint64_t> sorted_in = values, sorted_out = rotated;
  std::sort(sorted_in.begin(), sorted_in.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_in, sorted_out);
  EXPECT_NE(rotated, values);
}

TEST(Galois, MissingKeyRejected) {
  BfvFixture f(seal::EncryptionParameters::toy_mul_64(), 911);
  seal::Evaluator eval(f.ctx);
  const seal::GaloisKeys gk = f.keygen.create_galois_keys({3}, 8);
  seal::Ciphertext ct = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{1}), f.rng);
  EXPECT_THROW(eval.apply_galois_inplace(ct, 5, gk), std::invalid_argument);
  EXPECT_TRUE(gk.has(3));
  EXPECT_FALSE(gk.has(5));
}

TEST(Evaluator, MultiModulusMultiplyWorks) {
  // Two 24-bit primes (q ~ 2^48): the CRT tensor path.
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(64);
  p.set_coeff_modulus(seal::find_ntt_primes(24, 64, 2));
  p.set_plain_modulus(16);
  BfvFixture f(std::move(p), 1212);
  seal::Evaluator eval(f.ctx);
  const seal::Ciphertext ca = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{3}), f.rng);
  const seal::Ciphertext cb = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{5}), f.rng);
  seal::Ciphertext prod = eval.multiply(ca, cb);
  EXPECT_EQ(prod.size(), 3u);
  EXPECT_EQ(f.decryptor.decrypt(prod), seal::Plaintext(std::uint64_t{15}));
}

TEST(Evaluator, MultiModulusMultiplyPolynomials) {
  seal::EncryptionParameters p;
  p.set_poly_modulus_degree(64);
  p.set_coeff_modulus(seal::find_ntt_primes(24, 64, 2));
  p.set_plain_modulus(16);
  BfvFixture f(std::move(p), 1313);
  seal::Evaluator eval(f.ctx);
  // (2 + x) * (3 + x) = 6 + 5x + x^2.
  const seal::Plaintext a(std::vector<std::uint64_t>{2, 1});
  const seal::Plaintext b(std::vector<std::uint64_t>{3, 1});
  seal::Ciphertext prod =
      eval.multiply(f.encryptor.encrypt(a, f.rng), f.encryptor.encrypt(b, f.rng));
  EXPECT_EQ(f.decryptor.decrypt(prod),
            seal::Plaintext(std::vector<std::uint64_t>{6, 5, 1}));
}

TEST(Evaluator, OversizedMultiplyStillRejected) {
  // Three 36-bit primes: 2*108 + ... > 126 bits — must refuse loudly.
  seal::EncryptionParameters p = seal::EncryptionParameters::seal_128_4096();
  BfvFixture f(std::move(p), 1414);
  seal::Evaluator eval(f.ctx);
  const seal::Ciphertext ct = f.encryptor.encrypt(seal::Plaintext(std::uint64_t{1}), f.rng);
  EXPECT_THROW((void)eval.multiply(ct, ct), std::logic_error);
}
