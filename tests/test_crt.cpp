// CRT composer tests.

#include <gtest/gtest.h>

#include "numeric/rng.hpp"
#include "seal/crt.hpp"
#include "seal/modulus.hpp"

namespace seal = reveal::seal;

TEST(Crt, SingleModulusIsIdentity) {
  const seal::CrtComposer crt({seal::Modulus(97)});
  EXPECT_EQ(crt.compose({std::uint64_t{42}}).low_word(), 42u);
  EXPECT_EQ(crt.total_modulus().low_word(), 97u);
}

TEST(Crt, TwoModuliKnownValue) {
  // x = 23: 23 mod 7 = 2, 23 mod 11 = 1.
  const seal::CrtComposer crt({seal::Modulus(7), seal::Modulus(11)});
  EXPECT_EQ(crt.compose({2, 1}).low_word(), 23u);
  EXPECT_EQ(crt.total_modulus().low_word(), 77u);
}

TEST(Crt, RoundtripRandomized) {
  const std::vector<seal::Modulus> moduli = {
      seal::Modulus(132120577ULL), seal::Modulus(1073479681ULL), seal::Modulus(97)};
  const seal::CrtComposer crt(moduli);
  reveal::num::Xoshiro256StarStar rng(31);
  for (int rep = 0; rep < 200; ++rep) {
    // Draw x < q via limbs, reduce per modulus, recompose.
    const std::uint64_t lo = rng();
    const std::uint64_t hi = rng() % 97;  // keep x < q (~2^63)
    seal::BigUInt x(hi);
    x <<= 56;
    x += seal::BigUInt(lo % (std::uint64_t{1} << 56));
    if (x >= crt.total_modulus()) continue;
    std::vector<std::uint64_t> residues;
    for (const auto& m : moduli) residues.push_back(x.mod_word(m.value()));
    EXPECT_EQ(crt.compose(residues), x) << rep;
  }
}

TEST(Crt, PolyComposition) {
  const std::vector<seal::Modulus> moduli = {seal::Modulus(7), seal::Modulus(11)};
  const seal::CrtComposer crt(moduli);
  seal::Poly p(4, 2);
  p.at(2, 0) = 2;  // 23 mod 7
  p.at(2, 1) = 1;  // 23 mod 11
  EXPECT_EQ(crt.compose(p, 2).low_word(), 23u);
  EXPECT_TRUE(crt.compose(p, 0).is_zero());
}

TEST(Crt, CenteredMagnitude) {
  const seal::CrtComposer crt({seal::Modulus(101)});
  EXPECT_EQ(crt.centered_magnitude(seal::BigUInt(5)).low_word(), 5u);
  EXPECT_EQ(crt.centered_magnitude(seal::BigUInt(99)).low_word(), 2u);  // -2
}

TEST(Crt, Validation) {
  EXPECT_THROW(seal::CrtComposer({}), std::invalid_argument);
  // Non-coprime moduli have no CRT inverse.
  EXPECT_THROW(seal::CrtComposer({seal::Modulus(8), seal::Modulus(12)}),
               std::invalid_argument);
  const seal::CrtComposer crt({seal::Modulus(7), seal::Modulus(11)});
  EXPECT_THROW((void)crt.compose({std::uint64_t{1}}), std::invalid_argument);
}
