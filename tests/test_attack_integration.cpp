// Integration tests for the full RevEAL pipeline: capture -> segmentation
// -> sign classification -> template attack -> hints -> message recovery.

#include <gtest/gtest.h>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "core/message_recovery.hpp"
#include "core/residual_search.hpp"
#include "lwe/dbdd.hpp"
#include "power/trace_recorder.hpp"
#include "sca/report.hpp"
#include "seal/decryptor.hpp"
#include "seal/encryptor.hpp"
#include "seal/sampler.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.moduli = {132120577ULL};
  return cfg;
}

}  // namespace

TEST(Acquisition, SegmentationFindsEveryCoefficient) {
  SamplerCampaign campaign(small_campaign());
  std::size_t ok = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    EXPECT_EQ(cap.noise.size(), 64u);
    if (cap.segments.size() == 64u) ++ok;
  }
  // Segmentation must be essentially perfect for the single-trace attack.
  EXPECT_EQ(ok, 10u);
}

TEST(Acquisition, WindowsAlignedAndLongEnough) {
  SamplerCampaign campaign(small_campaign());
  const FullCapture cap = campaign.capture(99);
  ASSERT_EQ(cap.segments.size(), 64u);
  const auto windows = windows_from_capture(cap);
  for (const auto& w : windows) {
    EXPECT_GE(w.samples.size(), 100u);  // room for sign + value prefix
  }
}

TEST(Acquisition, CollectRejectsBadCapturesGracefully) {
  SamplerCampaign campaign(small_campaign());
  std::size_t rejected = 7777;
  const auto windows = campaign.collect_windows(5, 1000, &rejected);
  EXPECT_EQ(windows.size() + rejected * 64, 5u * 64);
}

class AttackPipeline : public ::testing::Test {
 protected:
  // One shared profiling phase for all pipeline tests (expensive).
  static void SetUpTestSuite() {
    campaign_ = new SamplerCampaign(small_campaign());
    attack_ = new RevealAttack();
    const auto profiling = campaign_->collect_windows(kProfilingRuns, /*seed_base=*/1);
    ASSERT_GE(profiling.size(), kProfilingRuns * 60u);
    attack_->train(profiling);
  }
  static void TearDownTestSuite() {
    delete attack_;
    delete campaign_;
    attack_ = nullptr;
    campaign_ = nullptr;
  }

  static constexpr std::size_t kProfilingRuns = 120;  // ~7.7k windows
  static SamplerCampaign* campaign_;
  static RevealAttack* attack_;
};

SamplerCampaign* AttackPipeline::campaign_ = nullptr;
RevealAttack* AttackPipeline::attack_ = nullptr;

TEST_F(AttackPipeline, SignClassificationIsPerfect) {
  // Paper §IV-B: "Our attack has 100% success rate for guessing the sign."
  std::size_t total = 0, correct = 0;
  for (std::uint64_t seed = 500; seed < 520; ++seed) {
    const FullCapture cap = campaign_->capture(seed);
    ASSERT_EQ(cap.segments.size(), 64u);
    const auto guesses = attack_->attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      correct += (guesses[i].sign == truth);
      ++total;
    }
  }
  EXPECT_EQ(correct, total);
}

TEST_F(AttackPipeline, ValueRecoveryBeatsChanceAndFavoursNegatives) {
  sca::ConfusionMatrix cm;
  for (std::uint64_t seed = 600; seed < 640; ++seed) {
    const FullCapture cap = campaign_->capture(seed);
    ASSERT_EQ(cap.segments.size(), 64u);
    const auto guesses = attack_->attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      cm.add(static_cast<std::int32_t>(cap.noise[i]), guesses[i].value);
    }
  }
  // Zero is detected via the branch: 100%.
  EXPECT_NEAR(cm.accuracy(0), 100.0, 1e-9);
  // Negative values must be recovered noticeably better than positive ones
  // (vulnerability 3; see Table I).
  double neg_acc = 0.0, pos_acc = 0.0;
  std::size_t neg_n = 0, pos_n = 0;
  for (int v = 1; v <= 6; ++v) {
    if (cm.truth_count(-v) > 20) {
      neg_acc += cm.accuracy(-v);
      ++neg_n;
    }
    if (cm.truth_count(v) > 20) {
      pos_acc += cm.accuracy(v);
      ++pos_n;
    }
  }
  ASSERT_GT(neg_n, 0u);
  ASSERT_GT(pos_n, 0u);
  neg_acc /= static_cast<double>(neg_n);
  pos_acc /= static_cast<double>(pos_n);
  EXPECT_GT(neg_acc, 50.0);
  EXPECT_GT(neg_acc, pos_acc + 20.0);
  // Positives still beat random guessing over ~14 candidates (~7%).
  EXPECT_GT(pos_acc, 10.0);
}

TEST_F(AttackPipeline, PosteriorsAreCalibratedProbabilities) {
  const FullCapture cap = campaign_->capture(700);
  ASSERT_EQ(cap.segments.size(), 64u);
  const auto guesses = attack_->attack_capture(cap);
  for (const auto& g : guesses) {
    double total = 0.0;
    for (const double p : g.posterior) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
    EXPECT_EQ(g.support.size(), g.posterior.size());
  }
}

TEST_F(AttackPipeline, HintsCollapseEstimatedSecurity) {
  // Collect 1024 coefficient guesses (16 captures x 64) and feed them into
  // the SEAL-128 DBDD instance, like the paper's Tables III/IV.
  std::vector<CoefficientGuess> guesses;
  for (std::uint64_t seed = 800; guesses.size() < 1024; ++seed) {
    const FullCapture cap = campaign_->capture(seed);
    ASSERT_EQ(cap.segments.size(), 64u);
    const auto batch = attack_->attack_capture(cap);
    guesses.insert(guesses.end(), batch.begin(), batch.end());
  }
  guesses.resize(1024);

  lwe::DbddParams params;
  params.secret_dim = 1024;
  params.error_dim = 1024;
  params.q = 132120577.0;
  params.secret_variance = 3.2 * 3.2;
  params.error_variance = 3.2 * 3.2;

  // Table III shape: ~382 bikz -> "complete break" with full hints.
  const double baseline = lwe::estimate_lwe_security(params).beta;
  EXPECT_GT(baseline, 300.0);

  // (i) Honest calibration: integrate the measured posterior variances.
  lwe::DbddEstimator with_hints(params);
  const HintSummary summary =
      integrate_guess_hints(with_hints, guesses, attack_->config().perfect_hint_threshold);
  EXPECT_EQ(summary.perfect + summary.approximate, 1024u);
  EXPECT_GT(summary.perfect, 100u);  // zeros (and sharp negatives) are exact
  const double hinted = with_hints.estimate().beta;
  EXPECT_LT(hinted, baseline - 80.0);

  // (ii) The paper's methodology: measurements are treated as (near-)perfect
  // hints ("the distribution has a variance that is very close if not equal
  // to 0"), which is what yields the 12.2-bikz complete break of Table III.
  lwe::DbddEstimator paper_style(params);
  paper_style.integrate_perfect_error_hints(1024);
  EXPECT_LT(paper_style.estimate().beta, 40.0);

  // Table IV shape: signs alone reduce but do NOT break the scheme.
  lwe::DbddEstimator sign_only(params);
  integrate_sign_only_hints(sign_only, guesses, 3.19, 41.0);
  const double signs = sign_only.estimate().beta;
  EXPECT_LT(signs, baseline - 40.0);
  EXPECT_GT(signs, 150.0);
  EXPECT_GT(signs, hinted);
}

TEST_F(AttackPipeline, RobustPathMatchesSeedPipelineBitIdentically) {
  // Acceptance criterion of the robustness layer: with no faults injected
  // and the default (gates-off) AttackConfig, the degradation-aware entry
  // point must reproduce the seed pipeline exactly — same segmentation on
  // the first attempt and field-identical guesses, not merely "close".
  for (std::uint64_t seed = 2000; seed < 2008; ++seed) {
    const FullCapture cap = campaign_->capture(seed);
    ASSERT_EQ(cap.segments.size(), 64u);
    const auto seed_guesses = attack_->attack_capture(cap);

    const RobustCaptureResult robust = attack_->attack_capture_robust(
        cap.trace, 64, campaign_->config().segmentation);
    EXPECT_EQ(robust.segmentation.status, sca::SegmentationStatus::kOk);
    EXPECT_EQ(robust.segmentation.attempts, 1u);
    ASSERT_EQ(robust.segmentation.segments.size(), cap.segments.size());
    for (std::size_t i = 0; i < cap.segments.size(); ++i) {
      EXPECT_EQ(robust.segmentation.segments[i].window_begin,
                cap.segments[i].window_begin);
      EXPECT_EQ(robust.segmentation.segments[i].window_end, cap.segments[i].window_end);
    }

    ASSERT_EQ(robust.guesses.size(), seed_guesses.size());
    for (std::size_t i = 0; i < seed_guesses.size(); ++i) {
      const auto& a = seed_guesses[i];
      const auto& b = robust.guesses[i];
      EXPECT_EQ(a.sign, b.sign);
      EXPECT_EQ(a.value, b.value);
      EXPECT_EQ(a.support, b.support);
      EXPECT_EQ(a.posterior, b.posterior);  // bit-identical doubles
      EXPECT_EQ(b.quality, GuessQuality::kOk);
      EXPECT_TRUE(b.sign_trusted);
    }
  }
}

TEST(EndToEnd, SingleTraceMessageRecovery) {
  // Tie a capture to a real BFV encryption: the victim-sampled noise is e2,
  // then the attack must recover the plaintext from (trace, pk, ct) alone
  // via u = (c1 - e2)/p1 and Eq. (3). Uses the lab-grade acquisition
  // (low noise, strong per-bit spread) in which per-coefficient posteriors
  // are sharp — the regime of the paper's Table II, where full message
  // recovery from a single trace succeeds; the default-noise configuration
  // instead reproduces the Table I statistics.
  CampaignConfig lab = small_campaign();
  lab.leakage.noise_sigma = 0.01;
  lab.leakage.bit_deviation = 0.35;
  SamplerCampaign campaign(lab);
  RevealAttack attack;
  attack.train(campaign.collect_windows(150, /*seed_base=*/1));

  seal::EncryptionParameters parms;
  parms.set_poly_modulus_degree(64);
  parms.set_coeff_modulus({seal::Modulus(132120577ULL)});
  parms.set_plain_modulus(256);
  const seal::Context ctx(parms);
  seal::StandardRandomGenerator rng(31415);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());

  std::size_t successes = 0;
  std::size_t attempts = 0;
  for (std::uint64_t seed = 900; seed < 910; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    ASSERT_EQ(cap.segments.size(), 64u);

    // The encryption whose e2 was sampled on the victim.
    seal::EncryptionWitness witness;
    witness.u = seal::Poly(64, 1);
    seal::sample_poly_ternary(witness.u, rng, ctx);
    witness.e1.assign(64, 0);
    seal::StandardRandomGenerator noise_rng(seed);
    std::vector<std::int64_t> e1;
    (void)seal::sample_error_poly(noise_rng, ctx, &e1);
    witness.e1 = e1;
    witness.e2 = cap.noise;

    std::vector<std::uint64_t> msg(64);
    for (std::size_t i = 0; i < 64; ++i) msg[i] = (i * 31 + seed) % 256;
    const seal::Plaintext plain(msg);
    const seal::Ciphertext ct = encryptor.encrypt_with_witness(plain, witness);

    // Attack: recover e2 from the trace (template posteriors + residual
    // search with the public-value consistency oracle), then the message.
    const auto guesses = attack.attack_capture(cap);
    ++attempts;
    ResidualSearchConfig search_config;
    search_config.max_tries = 500000;
    const ResidualSearchResult search =
        residual_search(ctx, keygen.public_key(), ct, guesses, search_config);
    if (search.found) {
      const auto recovered = recover_message(ctx, keygen.public_key(), ct, search.e2);
      if (recovered.has_value() && *recovered == plain) ++successes;
    }

    // With ground-truth e2 the recovery must always work (sanity).
    const auto exact = recover_message(ctx, keygen.public_key(), ct, cap.noise);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(*exact, plain);
  }
  // Full single-trace recovery: with the lab-grade acquisition the
  // residual search closes the remaining gap for (nearly) every trace —
  // and whenever the search reports success the decoded message must be
  // the right one (checked above), never a false positive.
  EXPECT_GE(successes, attempts - 2) << "attempts=" << attempts;
}

TEST(PatchedFirmwareNote, VulnerableAndPatchedDifferOnlyInControlFlow) {
  // Documented behaviour: the library-level patched sampler produces the
  // same values as the vulnerable one (see test_sampler.cpp); the firmware
  // counterpart of the patch is exercised in bench_patched_sampler.
  SUCCEED();
}

TEST(EndToEnd, FullEncryptionTraceCoversBothErrorPolys) {
  // One trace of the full encryption (e1 sampled, then e2): segmentation
  // must find 2n windows, and templates trained on single-poly captures
  // transfer (the per-coefficient code is identical).
  constexpr std::size_t kN = 64;
  CampaignConfig cfg = small_campaign();
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(120, /*seed_base=*/1));

  const VictimProgram prog = build_encryption_firmware(kN, {132120577ULL});
  riscv::Machine machine(prog.memory_bytes);
  const power::LeakageModel model(cfg.leakage);
  power::TraceRecorder recorder(model, /*noise_seed=*/5);
  const VictimRun run = run_victim(prog, machine, 0xBEEF, &recorder);

  std::vector<double> trace = recorder.take_samples();
  auto segments = sca::segment_trace(trace, cfg.segmentation);
  anchor_windows_at_burst_edge(trace, segments, cfg.segmentation.threshold);
  ASSERT_EQ(segments.size(), 2 * kN);

  std::size_t sign_ok = 0;
  for (std::size_t w = 0; w < segments.size(); ++w) {
    const auto& seg = segments[w];
    std::vector<double> window(trace.begin() + static_cast<std::ptrdiff_t>(seg.window_begin),
                               trace.begin() + static_cast<std::ptrdiff_t>(seg.window_end));
    if (window.size() < 110) continue;  // final window may be short-ish
    const auto guess = attack.attack_window(window);
    const std::int64_t truth = run.noise[w];
    const int truth_sign = truth > 0 ? 1 : (truth < 0 ? -1 : 0);
    sign_ok += (guess.sign == truth_sign);
  }
  // Sign recovery transfers across both polynomials (one window between the
  // polys may see a slightly different continuation).
  EXPECT_GE(sign_ok, 2 * kN - 2);
}

TEST(Acquisition, RobustToBaselineDrift) {
  // Slow supply drift must not break segmentation or sign recovery (the
  // thresholds have multi-sigma margins).
  CampaignConfig cfg = small_campaign();
  cfg.leakage.drift_sigma = 0.002;  // ~0.4 units of wander over a trace
  SamplerCampaign campaign(cfg);
  RevealAttack attack;
  attack.train(campaign.collect_windows(100, /*seed_base=*/1));
  std::size_t total = 0, sign_ok = 0;
  for (std::uint64_t seed = 400; seed < 410; ++seed) {
    const FullCapture cap = campaign.capture(seed);
    ASSERT_EQ(cap.segments.size(), cfg.n) << seed;
    const auto guesses = attack.attack_capture(cap);
    for (std::size_t i = 0; i < guesses.size(); ++i) {
      const int truth = cap.noise[i] > 0 ? 1 : (cap.noise[i] < 0 ? -1 : 0);
      sign_ok += (guesses[i].sign == truth);
      ++total;
    }
  }
  EXPECT_GE(sign_ok, total - 3);  // drift may cost at most a stray window
}
