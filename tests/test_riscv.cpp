// RV32IM simulator tests: encode/decode roundtrips, instruction semantics,
// control flow, traps, the timing model, and small end-to-end programs.

#include <gtest/gtest.h>

#include <functional>

#include "riscv/assembler.hpp"
#include "riscv/machine.hpp"

using namespace reveal::riscv;

namespace {

/// Assembles, runs (with a halt at the end), and returns the machine.
Machine run_program(const std::function<void(Assembler&)>& body,
                    std::size_t memory = 64 * 1024) {
  Assembler as;
  body(as);
  as.ebreak();
  Machine m(memory);
  m.load_program(as.assemble());
  EXPECT_EQ(m.run(100000), Machine::StopReason::kHalt) << m.trap_message();
  return m;
}

}  // namespace

TEST(Decoder, RoundtripThroughAssembler) {
  Assembler as;
  as.add(a0, a1, a2);
  as.sub(s0, s1, s2);
  as.mul(t0, t1, t2);
  as.divu(a3, a4, a5);
  as.lw(a0, -8, sp);
  as.sw(a1, 12, sp);
  as.addi(a2, a3, -2048);
  as.andi(t3, t4, 255);
  as.slli(a4, a5, 13);
  as.srai(a6, a7, 31);
  as.lui(t5, 0xFFFFF);
  as.ecall();
  const auto words = as.assemble();
  const Op expect[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDivu, Op::kLw, Op::kSw,
                       Op::kAddi, Op::kAndi, Op::kSlli, Op::kSrai, Op::kLui, Op::kEcall};
  ASSERT_EQ(words.size(), std::size(expect));
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(decode(words[i]).op, expect[i]) << "word " << i;
  }
}

TEST(Decoder, FieldExtraction) {
  Assembler as;
  as.addi(a0, a1, -7);
  const Instruction ins = decode(as.assemble()[0]);
  EXPECT_EQ(ins.rd, index(a0));
  EXPECT_EQ(ins.rs1, index(a1));
  EXPECT_EQ(ins.imm, -7);
}

TEST(Decoder, InvalidEncoding) {
  EXPECT_EQ(decode(0xFFFFFFFFu).op, Op::kInvalid);
  EXPECT_EQ(decode(0).op, Op::kInvalid);
}

TEST(Decoder, MnemonicsDistinct) {
  EXPECT_EQ(mnemonic(Op::kMul), "mul");
  EXPECT_EQ(mnemonic(Op::kSw), "sw");
  EXPECT_EQ(mnemonic(Op::kInvalid), "invalid");
}

TEST(Machine, ArithmeticSemantics) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 100);
    as.li(a1, -30);
    as.add(a2, a0, a1);   // 70
    as.sub(a3, a0, a1);   // 130
    as.xor_(a4, a0, a1);
    as.or_(a5, a0, a1);
    as.and_(a6, a0, a1);
  });
  EXPECT_EQ(m.reg(a2), 70u);
  EXPECT_EQ(m.reg(a3), 130u);
  EXPECT_EQ(m.reg(a4), 100u ^ static_cast<std::uint32_t>(-30));
  EXPECT_EQ(m.reg(a5), 100u | static_cast<std::uint32_t>(-30));
  EXPECT_EQ(m.reg(a6), 100u & static_cast<std::uint32_t>(-30));
}

TEST(Machine, ShiftSemantics) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, -16);
    as.srai(a1, a0, 2);   // -4
    as.srli(a2, a0, 2);   // logical
    as.slli(a3, a0, 1);   // -32
    as.li(t0, 3);
    as.sra(a4, a0, t0);   // -2
    as.srl(a5, a0, t0);
    as.sll(a6, a0, t0);
  });
  EXPECT_EQ(m.reg(a1), static_cast<std::uint32_t>(-4));
  EXPECT_EQ(m.reg(a2), static_cast<std::uint32_t>(-16) >> 2);
  EXPECT_EQ(m.reg(a3), static_cast<std::uint32_t>(-32));
  EXPECT_EQ(m.reg(a4), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(m.reg(a5), static_cast<std::uint32_t>(-16) >> 3);
  EXPECT_EQ(m.reg(a6), static_cast<std::uint32_t>(-16) << 3);
}

TEST(Machine, ComparisonSemantics) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, -1);
    as.li(a1, 1);
    as.slt(a2, a0, a1);    // -1 < 1 -> 1
    as.sltu(a3, a0, a1);   // 0xFFFFFFFF < 1 -> 0
    as.slti(a4, a0, 0);    // 1
    as.sltiu(a5, a1, -1);  // 1 < 0xFFFFFFFF -> 1
  });
  EXPECT_EQ(m.reg(a2), 1u);
  EXPECT_EQ(m.reg(a3), 0u);
  EXPECT_EQ(m.reg(a4), 1u);
  EXPECT_EQ(m.reg(a5), 1u);
}

TEST(Machine, X0IsHardwiredZero) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 5);
    as.add(zero, a0, a0);  // write ignored
    as.add(a1, zero, zero);
  });
  EXPECT_EQ(m.reg(zero), 0u);
  EXPECT_EQ(m.reg(a1), 0u);
}

TEST(Machine, LoadStoreWidthsAndSignExtension) {
  const Machine m = run_program([](Assembler& as) {
    as.li(s0, 0x1000);
    as.li(a0, -2);          // 0xFFFFFFFE
    as.sw(a0, 0, s0);
    as.lb(a1, 0, s0);       // 0xFE -> -2
    as.lbu(a2, 0, s0);      // 0xFE
    as.lh(a3, 0, s0);       // 0xFFFE -> -2
    as.lhu(a4, 0, s0);      // 0xFFFE
    as.lw(a5, 0, s0);
    as.li(a6, 0x12345678);
    as.sb(a6, 4, s0);       // stores 0x78
    as.lbu(a7, 4, s0);
    as.sh(a6, 8, s0);       // stores 0x5678
    as.lhu(t0, 8, s0);
  });
  EXPECT_EQ(m.reg(a1), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(m.reg(a2), 0xFEu);
  EXPECT_EQ(m.reg(a3), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(m.reg(a4), 0xFFFEu);
  EXPECT_EQ(m.reg(a5), 0xFFFFFFFEu);
  EXPECT_EQ(m.reg(a7), 0x78u);
  EXPECT_EQ(m.reg(t0), 0x5678u);
}

TEST(Machine, BranchesTakenAndNotTaken) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 1);
    as.li(a1, 2);
    as.li(a2, 0);
    as.blt(a0, a1, "taken");
    as.li(a2, 99);  // skipped
    as.label("taken");
    as.addi(a2, a2, 1);
    as.bge(a0, a1, "nottaken");
    as.addi(a2, a2, 10);
    as.label("nottaken");
  });
  EXPECT_EQ(m.reg(a2), 11u);
}

TEST(Machine, UnsignedBranches) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, -1);  // 0xFFFFFFFF
    as.li(a1, 1);
    as.li(a2, 0);
    as.bltu(a1, a0, "hit");  // 1 < 0xFFFFFFFF unsigned
    as.li(a2, 99);
    as.label("hit");
    as.addi(a2, a2, 5);
  });
  EXPECT_EQ(m.reg(a2), 5u);
}

TEST(Machine, JalAndJalrCallReturn) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 0);
    as.call("leaf");
    as.addi(a0, a0, 100);  // after return
    as.j("end");
    as.label("leaf");
    as.addi(a0, a0, 1);
    as.ret();
    as.label("end");
  });
  EXPECT_EQ(m.reg(a0), 101u);
}

TEST(Machine, MulDivSemantics) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, -7);
    as.li(a1, 3);
    as.mul(a2, a0, a1);    // -21
    as.mulh(a3, a0, a1);   // high word of -21: 0xFFFFFFFF
    as.mulhu(a4, a0, a1);  // high of 0xFFFFFFF9 * 3
    as.div(a5, a0, a1);    // -2 (truncation toward zero)
    as.rem(a6, a0, a1);    // -1
    as.divu(a7, a0, a1);
    as.remu(t0, a0, a1);
  });
  EXPECT_EQ(m.reg(a2), static_cast<std::uint32_t>(-21));
  EXPECT_EQ(m.reg(a3), 0xFFFFFFFFu);
  const std::uint64_t wide = static_cast<std::uint64_t>(0xFFFFFFF9u) * 3u;
  EXPECT_EQ(m.reg(a4), static_cast<std::uint32_t>(wide >> 32));
  EXPECT_EQ(m.reg(a5), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(m.reg(a6), static_cast<std::uint32_t>(-1));
  EXPECT_EQ(m.reg(a7), 0xFFFFFFF9u / 3u);
  EXPECT_EQ(m.reg(t0), 0xFFFFFFF9u % 3u);
}

TEST(Machine, MulhsuSemantics) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, -1);          // signed -1
    as.li(a1, -1);          // as unsigned 0xFFFFFFFF
    as.mulhsu(a2, a0, a1);  // (-1) * 0xFFFFFFFF = -0xFFFFFFFF, high word = -1
  });
  EXPECT_EQ(m.reg(a2), 0xFFFFFFFFu);
}

TEST(Machine, DivisionEdgeCases) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 5);
    as.li(a1, 0);
    as.div(a2, a0, a1);    // -1 per spec
    as.divu(a3, a0, a1);   // all ones
    as.rem(a4, a0, a1);    // dividend
    as.remu(a5, a0, a1);   // dividend
    as.li(a6, INT32_MIN);
    as.li(a7, -1);
    as.div(t0, a6, a7);    // overflow: INT32_MIN
    as.rem(t1, a6, a7);    // 0
  });
  EXPECT_EQ(m.reg(a2), 0xFFFFFFFFu);
  EXPECT_EQ(m.reg(a3), 0xFFFFFFFFu);
  EXPECT_EQ(m.reg(a4), 5u);
  EXPECT_EQ(m.reg(a5), 5u);
  EXPECT_EQ(m.reg(t0), static_cast<std::uint32_t>(INT32_MIN));
  EXPECT_EQ(m.reg(t1), 0u);
}

TEST(Machine, LiPseudoCoversConstants) {
  for (const std::int32_t v : {0, 1, -1, 2047, -2048, 2048, -2049, 48000, 287994,
                               0x7FFFFFFF, static_cast<std::int32_t>(0x80000000)}) {
    const Machine m = run_program([v](Assembler& as) { as.li(a0, v); });
    EXPECT_EQ(m.reg(a0), static_cast<std::uint32_t>(v)) << v;
  }
}

TEST(Machine, LaLoadsDataAddress) {
  Assembler as;
  as.j("code");
  as.label("table");
  as.word(0xDEADBEEF);
  as.label("code");
  as.la(a0, "table");
  as.lw(a1, 0, a0);
  as.ebreak();
  Machine m(4096);
  m.load_program(as.assemble());
  ASSERT_EQ(m.run(100), Machine::StopReason::kHalt) << m.trap_message();
  EXPECT_EQ(m.reg(a1), 0xDEADBEEFu);
}

TEST(Machine, FibonacciProgram) {
  const Machine m = run_program([](Assembler& as) {
    as.li(a0, 0);  // fib(0)
    as.li(a1, 1);  // fib(1)
    as.li(t0, 10); // iterations
    as.label("loop");
    as.beqz(t0, "end");
    as.add(a2, a0, a1);
    as.mv(a0, a1);
    as.mv(a1, a2);
    as.addi(t0, t0, -1);
    as.j("loop");
    as.label("end");
  });
  EXPECT_EQ(m.reg(a0), 55u);  // fib(10)
}

TEST(Machine, TrapOnIllegalInstruction) {
  Machine m(4096);
  m.load_program({0xFFFFFFFFu});
  EXPECT_EQ(m.run(10), Machine::StopReason::kTrap);
  EXPECT_NE(m.trap_message().find("illegal"), std::string::npos);
}

TEST(Machine, TrapOnMisalignedLoad) {
  Assembler as;
  as.li(a0, 0x1001);
  as.lw(a1, 0, a0);
  Machine m(4096);
  m.load_program(as.assemble());
  EXPECT_EQ(m.run(10), Machine::StopReason::kTrap);
}

TEST(Machine, TrapOnOutOfBoundsStore) {
  Assembler as;
  as.li(a0, 0x100000);  // beyond 4 KiB memory
  as.sw(a0, 0, a0);
  Machine m(4096);
  m.load_program(as.assemble());
  EXPECT_EQ(m.run(10), Machine::StopReason::kTrap);
}

TEST(Machine, InstructionLimit) {
  Assembler as;
  as.label("spin");
  as.j("spin");
  Machine m(4096);
  m.load_program(as.assemble());
  EXPECT_EQ(m.run(100), Machine::StopReason::kInstrLimit);
  EXPECT_EQ(m.retired_count(), 100u);
}

TEST(Timing, CycleAccounting) {
  // One ALU-imm (3), one load (5), one taken branch (5), halt (3).
  Assembler as;
  as.li(a0, 0x100);          // addi -> 3
  as.lw(a1, 0, a0);          // 5
  as.beq(zero, zero, "end"); // taken -> 5
  as.addi(a2, a2, 1);
  as.label("end");
  as.ebreak();               // system -> 3
  Machine m(4096);
  m.load_program(as.assemble());
  ASSERT_EQ(m.run(100), Machine::StopReason::kHalt);
  const TimingModel t;
  EXPECT_EQ(m.cycle_count(), t.alu_imm + t.load + t.branch_taken + t.system);
}

TEST(Timing, MulIsExpensive) {
  const TimingModel t;
  EXPECT_GT(t.mul, 5u * t.alu);  // PicoRV32 sequential multiplier
  EXPECT_EQ(t.cycles_for(InstrClass::kBranch, true), t.branch_taken);
  EXPECT_EQ(t.cycles_for(InstrClass::kBranch, false), t.branch_not_taken);
}

TEST(Observer, EventsCarryDataFlow) {
  struct Collector : ExecutionObserver {
    std::vector<InstrEvent> events;
    void on_instruction(const InstrEvent& e) override { events.push_back(e); }
  } collector;

  Assembler as;
  as.li(a0, 0xFF);        // addi
  as.li(s0, 0x200);
  as.sw(a0, 0, s0);       // store: mem_data = 0xFF
  as.ebreak();
  Machine m(4096);
  m.load_program(as.assemble());
  ASSERT_EQ(m.run(100, &collector), Machine::StopReason::kHalt);

  ASSERT_GE(collector.events.size(), 4u);
  const auto& first = collector.events.front();
  EXPECT_TRUE(first.rd_written);
  EXPECT_EQ(first.rd_new, 0xFFu);
  EXPECT_EQ(first.rd_old, 0u);

  bool found_store = false;
  for (const auto& e : collector.events) {
    if (e.is_mem_write) {
      EXPECT_EQ(e.mem_data, 0xFFu);
      EXPECT_EQ(e.mem_addr, 0x200u);
      found_store = true;
    }
  }
  EXPECT_TRUE(found_store);
}

TEST(Assembler, ErrorsOnBadInput) {
  Assembler as;
  EXPECT_THROW(as.addi(a0, a0, 5000), std::runtime_error);   // imm too big
  EXPECT_THROW(as.slli(a0, a0, 32), std::runtime_error);     // shamt too big
  as.label("dup");
  EXPECT_THROW(as.label("dup"), std::runtime_error);
  as.j("missing");
  EXPECT_THROW(as.assemble(), std::runtime_error);           // unresolved label
}

TEST(Machine, ResetPreservesMemoryClearsState) {
  Assembler as;
  as.li(a0, 42);
  as.li(s0, 0x400);
  as.sw(a0, 0, s0);
  as.ebreak();
  Machine m(4096);
  m.load_program(as.assemble());
  ASSERT_EQ(m.run(100), Machine::StopReason::kHalt);
  EXPECT_EQ(m.load_word(0x400), 42u);
  m.reset();
  EXPECT_EQ(m.reg(a0), 0u);
  EXPECT_EQ(m.cycle_count(), 0u);
  EXPECT_EQ(m.load_word(0x400), 42u);  // memory intact
}

TEST(Disassembler, KnownEncodings) {
  Assembler as;
  as.add(a0, a1, a2);
  as.addi(a0, a1, -7);
  as.lw(t0, 12, sp);
  as.sw(a1, -4, s0);
  as.lui(t5, 0xFFFFF);
  as.mul(t0, t1, t2);
  as.ebreak();
  const auto words = as.assemble();
  EXPECT_EQ(disassemble(words[0]), "add a0, a1, a2");
  EXPECT_EQ(disassemble(words[1]), "addi a0, a1, -7");
  EXPECT_EQ(disassemble(words[2]), "lw t0, 12(sp)");
  EXPECT_EQ(disassemble(words[3]), "sw a1, -4(s0)");
  EXPECT_EQ(disassemble(words[4]), "lui t5, 1048575");
  EXPECT_EQ(disassemble(words[5]), "mul t0, t1, t2");
  EXPECT_EQ(disassemble(words[6]), "ebreak");
}

TEST(Disassembler, BranchAndJumpOffsets) {
  Assembler as;
  as.label("top");
  as.beq(a0, a1, "top");  // offset 0
  as.j("top");            // offset -4
  const auto words = as.assemble();
  EXPECT_EQ(disassemble(words[0]), "beq a0, a1, pc+0");
  EXPECT_EQ(disassemble(words[1]), "jal zero, pc-4");
}

TEST(Disassembler, RegNames) {
  EXPECT_EQ(reg_name(0), "zero");
  EXPECT_EQ(reg_name(2), "sp");
  EXPECT_EQ(reg_name(10), "a0");
  EXPECT_EQ(reg_name(31), "t6");
  EXPECT_EQ(reg_name(99), "x?");
}

TEST(Disassembler, InvalidWord) {
  EXPECT_EQ(disassemble(0xFFFFFFFFu), "invalid");
}

TEST(Csr, CycleAndInstretCounters) {
  Assembler as;
  as.li(a0, 1);       // addi: 3 cycles, 1 instr
  as.li(a1, 2);       // 3 cycles, 1 instr
  as.rdcycle(a2);     // reads cycles BEFORE this instruction retires
  as.rdinstret(a3);
  as.ebreak();
  Machine m(4096);
  m.load_program(as.assemble());
  ASSERT_EQ(m.run(100), Machine::StopReason::kHalt) << m.trap_message();
  const TimingModel t;
  EXPECT_EQ(m.reg(a2), 2 * t.alu_imm);  // cycles consumed before the csrr
  EXPECT_EQ(m.reg(a3), 3u);  // li, li and the rdcycle retired before it
}

TEST(Csr, UnsupportedCsrTraps) {
  Assembler as;
  as.csrr(a0, 0x300);  // mstatus: not implemented
  Machine m(4096);
  m.load_program(as.assemble());
  EXPECT_EQ(m.run(10), Machine::StopReason::kTrap);
}

TEST(Csr, Disassembly) {
  Assembler as;
  as.rdcycle(a0);
  EXPECT_EQ(disassemble(as.assemble()[0]), "csrrs");
}
