// Differential tests for the analysis-plane fast kernels: every optimized
// path (shared-work segmentation sweep, FFT alignment, streaming class
// statistics, flat-GSO LLL) is fuzzed against its retained *_reference
// implementation. The segmentation/alignment/LLL pairs must agree
// bit-for-bit; the Welford-track statistics are tolerance-gated. Also
// covers the compensated-smoothing drift bound and the deterministic merge
// contracts (ClassStats blocks, RankAccumulator).

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "core/campaign_runner.hpp"
#include "lattice/lattice.hpp"
#include "numeric/fft.hpp"
#include "numeric/rng.hpp"
#include "sca/alignment.hpp"
#include "sca/class_stats.hpp"
#include "sca/metrics.hpp"
#include "sca/poi.hpp"
#include "sca/segmentation.hpp"
#include "sca/trace.hpp"
#include "sca/tvla.hpp"

using namespace reveal;
using namespace reveal::sca;

namespace {

// ---------------------------------------------------------------------------
// numeric/fft

TEST(FftKernel, NextPow2) {
  EXPECT_EQ(num::Fft::next_pow2(0), 1u);
  EXPECT_EQ(num::Fft::next_pow2(1), 1u);
  EXPECT_EQ(num::Fft::next_pow2(2), 2u);
  EXPECT_EQ(num::Fft::next_pow2(3), 4u);
  EXPECT_EQ(num::Fft::next_pow2(1024), 1024u);
  EXPECT_EQ(num::Fft::next_pow2(1025), 2048u);
}

TEST(FftKernel, ForwardInverseRoundTrip) {
  const std::size_t n = 256;
  num::Xoshiro256StarStar rng(11);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
  const std::vector<std::complex<double>> original = data;
  const num::Fft fft(n);
  fft.forward(data.data());
  fft.inverse(data.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-11);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-11);
  }
}

TEST(FftKernel, MatchesDirectDft) {
  const std::size_t n = 16;
  num::Xoshiro256StarStar rng(12);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0)};
  std::vector<std::complex<double>> direct(n, {0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -2.0 * M_PI * static_cast<double>(j * k) / static_cast<double>(n);
      direct[k] += data[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
  }
  const num::Fft fft(n);
  fft.forward(data.data());
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(data[k].real(), direct[k].real(), 1e-10);
    EXPECT_NEAR(data[k].imag(), direct[k].imag(), 1e-10);
  }
}

TEST(FftKernel, CrossCorrelationMatchesReference) {
  num::Xoshiro256StarStar rng(13);
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {17, 64}, {33, 100}, {128, 128}, {1, 40}};
  for (const auto& [na, nb] : shapes) {
    std::vector<double> a(na), b(nb);
    for (double& v : a) v = rng.gaussian(0.0, 2.0);
    for (double& v : b) v = rng.gaussian(0.0, 2.0);
    const std::vector<double> fast = num::cross_correlation(a, b);
    const std::vector<double> ref = num::cross_correlation_reference(a, b);
    ASSERT_EQ(fast.size(), ref.size());
    double scale = 1.0;
    for (const double v : ref) scale = std::max(scale, std::fabs(v));
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_NEAR(fast[i], ref[i], 1e-10 * scale) << "lag index " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Segmentation sweep

std::vector<double> fuzz_burst_trace(num::Xoshiro256StarStar& rng, std::size_t* bursts) {
  std::vector<double> trace(1500);
  for (double& v : trace) v = 1.0 + rng.gaussian(0.0, 0.3);
  const std::size_t count = 3 + static_cast<std::size_t>(rng() % 5);
  std::size_t pos = 40;
  std::size_t placed = 0;
  for (std::size_t b = 0; b < count && pos + 60 < trace.size(); ++b) {
    const std::size_t len = 20 + rng() % 20;
    for (std::size_t i = pos; i < pos + len; ++i) trace[i] = 9.0 + rng.gaussian(0.0, 0.5);
    ++placed;
    pos += len + 80 + rng() % 120;
  }
  // Degradations: one mid-level interference burst and one dropout notch.
  const std::size_t glitch = 20 + rng() % (trace.size() - 60);
  for (std::size_t i = glitch; i < glitch + 12; ++i) trace[i] = 5.5;
  const std::size_t notch = 20 + rng() % (trace.size() - 40);
  for (std::size_t i = notch; i < notch + 6; ++i) trace[i] = 0.0;
  *bursts = placed;
  return trace;
}

void expect_sweep_results_equal(const SegmentationResult& fast,
                                const SegmentationResult& ref) {
  EXPECT_EQ(fast.status, ref.status);
  ASSERT_EQ(fast.segments.size(), ref.segments.size());
  for (std::size_t i = 0; i < fast.segments.size(); ++i) {
    EXPECT_EQ(fast.segments[i].burst_begin, ref.segments[i].burst_begin);
    EXPECT_EQ(fast.segments[i].burst_end, ref.segments[i].burst_end);
    EXPECT_EQ(fast.segments[i].window_begin, ref.segments[i].window_begin);
    EXPECT_EQ(fast.segments[i].window_end, ref.segments[i].window_end);
  }
  EXPECT_EQ(fast.window_quality, ref.window_quality);  // bit-equal doubles
  EXPECT_EQ(fast.config.smooth_window, ref.config.smooth_window);
  EXPECT_EQ(fast.config.threshold, ref.config.threshold);
  EXPECT_EQ(fast.config.min_burst_length, ref.config.min_burst_length);
  EXPECT_EQ(fast.burst_consistency, ref.burst_consistency);
  EXPECT_LE(fast.attempts, ref.attempts);
}

TEST(SegmentationSweepFastPath, FuzzMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    num::Xoshiro256StarStar rng(seed);
    std::size_t bursts = 0;
    const std::vector<double> trace = fuzz_burst_trace(rng, &bursts);
    SegmentationConfig cfg;
    cfg.smooth_window = 3;
    cfg.threshold = seed % 3 == 0 ? 0.0 : 5.0;  // exercise auto and pinned
    cfg.min_burst_length = 16;
    for (const std::size_t expected :
         {bursts, bursts > 1 ? bursts - 1 : 1, bursts + 2}) {
      SCOPED_TRACE("expected " + std::to_string(expected));
      const SegmentationResult fast = segment_trace_robust(trace, expected, cfg);
      const SegmentationResult ref =
          segment_trace_robust_reference(trace, expected, cfg);
      expect_sweep_results_equal(fast, ref);
    }
  }
}

TEST(SegmentationSweepFastPath, AutoThresholdSweepMatchesReference) {
  // A flat trace makes auto_threshold degenerate (+inf): the reference
  // re-derives the auto threshold per candidate, collapsing all five
  // threshold scales; the fast path must reproduce that collapse.
  const std::vector<double> flat(600, 2.0);
  SegmentationConfig cfg;
  cfg.threshold = 0.0;
  const SegmentationResult fast = segment_trace_robust(flat, 4, cfg);
  const SegmentationResult ref = segment_trace_robust_reference(flat, 4, cfg);
  expect_sweep_results_equal(fast, ref);
  EXPECT_LT(fast.attempts, ref.attempts);
}

TEST(SegmentationSweepFastPath, DedupCountsDistinctSegmentationsOnly) {
  // smooth_window = 1 makes the sweep grid degenerate: its window variants
  // normalize to {1, 3, 1, 3}, so half the reference candidates are exact
  // duplicates. The fast path must evaluate each distinct (window,
  // threshold, min-burst) configuration exactly once and still select the
  // same result.
  std::vector<double> trace(400, 1.0);
  for (const std::size_t s : {50u, 170u, 300u}) {
    for (std::size_t i = s; i < s + 30; ++i) trace[i] = 10.0;
  }
  SegmentationConfig cfg;
  cfg.smooth_window = 1;
  cfg.threshold = 5.0;
  cfg.min_burst_length = 16;
  // Expect a count the trace cannot satisfy, forcing the full sweep.
  const SegmentationResult fast = segment_trace_robust(trace, 7, cfg);
  const SegmentationResult ref = segment_trace_robust_reference(trace, 7, cfg);
  expect_sweep_results_equal(fast, ref);
  // Reference: pass 1 + the 60-candidate grid minus the two base-config
  // entries (the duplicated base window hits the pass-1 skip twice).
  EXPECT_EQ(ref.attempts, 59u);
  // Fast: pass 1 + the 30 distinct configurations minus the base config.
  EXPECT_EQ(fast.attempts, 30u);
}

// ---------------------------------------------------------------------------
// Compensated smoothing drift

TEST(SmoothingDrift, CompensatedSmoothingTracksExactWindowedMeans) {
  // A large common-mode offset makes the plain sliding accumulator lose the
  // per-sample noise bits: after 2^20 adds/subtracts its output drifts from
  // the true windowed mean. The compensated kernel must stay within a few
  // ulps of the exact (recomputed per window, long double) value across the
  // whole trace.
  const std::size_t length = (1u << 20) + 37;
  const std::size_t window = 7;
  num::Xoshiro256StarStar rng(99);
  std::vector<double> samples(length);
  for (double& v : samples) v = 1.0e8 + rng.gaussian(0.0, 1.0);

  const std::vector<double> fast = smooth(samples, window);
  const std::vector<double> plain = smooth_reference(samples, window);

  double fast_err = 0.0;
  double plain_err = 0.0;
  for (std::size_t i = 0; i < length; ++i) {
    long double acc = 0.0L;
    const std::size_t begin = i + 1 >= window ? i + 1 - window : 0;
    for (std::size_t j = begin; j <= i; ++j) acc += samples[j];
    const double exact =
        static_cast<double>(acc / static_cast<long double>(i - begin + 1));
    fast_err = std::max(fast_err, std::fabs(fast[i] - exact));
    plain_err = std::max(plain_err, std::fabs(plain[i] - exact));
  }
  // The compensated error is bounded by the window content (~1e8 * eps);
  // the plain accumulator's drift grows with the stream and must be
  // observably worse — that gap is what the hardening buys.
  EXPECT_LT(fast_err, 1e-6);
  EXPECT_GT(plain_err, fast_err * 4.0);
}

TEST(SmoothingDrift, CompensatedEqualsReferenceOnShortBenignTraces) {
  // On short traces both kernels are exact to the ulp against the direct
  // mean; this pins the behavior segment_trace depends on.
  num::Xoshiro256StarStar rng(5);
  std::vector<double> samples(257);
  for (double& v : samples) v = rng.gaussian(0.0, 1.0);
  const std::vector<double> fast = smooth(samples, 5);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    double acc = 0.0;
    const std::size_t begin = i + 1 >= 5 ? i + 1 - 5 : 0;
    for (std::size_t j = begin; j <= i; ++j) acc += samples[j];
    EXPECT_NEAR(fast[i], acc / static_cast<double>(i - begin + 1), 1e-12);
  }
}

// ---------------------------------------------------------------------------
// FFT alignment

TEST(AlignmentFastPath, FuzzMatchesReference) {
  num::Xoshiro256StarStar rng(31);
  struct Case {
    std::size_t ref_len, trace_len, max_shift;
  };
  for (const Case& c : {Case{3000, 3000, 60}, Case{4096, 3500, 48},
                        Case{2800, 3100, 80}, Case{5000, 5000, 24}}) {
    SCOPED_TRACE("ref_len " + std::to_string(c.ref_len) + " max_shift " +
                 std::to_string(c.max_shift));
    std::vector<double> reference(c.ref_len);
    for (std::size_t i = 0; i < c.ref_len; ++i) {
      const double burst = (i / 70) % 2 == 0 ? 2.0 : 0.2;
      reference[i] = burst + rng.gaussian(0.0, 0.3);
    }
    const auto shift = static_cast<std::ptrdiff_t>(rng() % (2 * c.max_shift)) -
                       static_cast<std::ptrdiff_t>(c.max_shift);
    std::vector<double> trace = apply_shift(reference, shift);
    trace.resize(c.trace_len, 0.1);
    for (double& v : trace) v += rng.gaussian(0.0, 0.05);

    const AlignmentResult fast = find_alignment(reference, trace, c.max_shift);
    const AlignmentResult ref = find_alignment_reference(reference, trace, c.max_shift);
    EXPECT_EQ(fast.shift, ref.shift);
    EXPECT_EQ(fast.correlation, ref.correlation);  // bit-equal
  }
}

TEST(AlignmentFastPath, PureNoiseMatchesReference) {
  // No correlation structure: many near-tied delays, the worst case for the
  // screened-candidate set. Selection must still be tie-for-tie identical.
  num::Xoshiro256StarStar rng(41);
  std::vector<double> a(3200), b(3200);
  for (double& v : a) v = rng.gaussian(0.0, 1.0);
  for (double& v : b) v = rng.gaussian(0.0, 1.0);
  const AlignmentResult fast = find_alignment(a, b, 64);
  const AlignmentResult ref = find_alignment_reference(a, b, 64);
  EXPECT_EQ(fast.shift, ref.shift);
  EXPECT_EQ(fast.correlation, ref.correlation);
}

TEST(AlignmentFastPath, DegenerateConstantTraceMatchesReference) {
  // A constant trace zeroes every correlation denominator; the screen's
  // tolerance collapses and every delay is re-scored exactly.
  const std::vector<double> constant(3000, 4.0);
  std::vector<double> pattern(3000);
  num::Xoshiro256StarStar rng(43);
  for (double& v : pattern) v = rng.gaussian(0.0, 1.0);
  const AlignmentResult fast = find_alignment(pattern, constant, 20);
  const AlignmentResult ref = find_alignment_reference(pattern, constant, 20);
  EXPECT_EQ(fast.shift, ref.shift);
  EXPECT_EQ(fast.correlation, ref.correlation);
}

// ---------------------------------------------------------------------------
// Streaming class statistics

TraceSet labelled_set(std::size_t classes, std::size_t per_class, std::size_t min_len,
                      std::size_t len_jitter, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  TraceSet set;
  const std::int32_t half = static_cast<std::int32_t>(classes / 2);
  for (std::size_t t = 0; t < per_class; ++t) {
    for (std::size_t c = 0; c < classes; ++c) {
      Trace trace;
      trace.label = static_cast<std::int32_t>(c) - half;
      trace.samples.resize(min_len + (len_jitter == 0 ? 0 : rng() % len_jitter));
      for (std::size_t i = 0; i < trace.samples.size(); ++i) {
        const double leak = i % 11 == 3 ? 0.1 * static_cast<double>(trace.label) : 0.0;
        trace.samples[i] = leak + rng.gaussian(0.0, 1.0);
      }
      set.add(std::move(trace));
    }
  }
  return set;
}

TEST(ClassStatsStreaming, MeansAndSosdBitIdenticalToReference) {
  const TraceSet set = labelled_set(5, 7, 64, 7, 51);
  ClassStats acc(64);
  acc.add_all(set);
  const ClassMeans ref_means = class_means(set);
  EXPECT_EQ(acc.means(), ref_means);                 // bit-equal curves
  EXPECT_EQ(acc.sosd(), sosd_curve(ref_means));      // bit-equal SOSD
  EXPECT_EQ(select_pois(acc.sosd(), 8, 2), select_pois(sosd_curve(ref_means), 8, 2));
  EXPECT_EQ(acc.num_classes(), 5u);
  EXPECT_EQ(acc.total_count(), set.size());
}

TEST(ClassStatsStreaming, WelchTMatchesTwoPassReference) {
  const TraceSet set = labelled_set(2, 40, 96, 0, 52);
  ClassStats acc(96);
  acc.add_all(set);
  TraceSet pop_a, pop_b;
  for (const Trace& t : set) (t.label == -1 ? pop_a : pop_b).add(t);
  const std::vector<double> ref = welch_t_test(pop_a, pop_b);
  const std::vector<double> fast = acc.welch_t(-1, 0);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_NEAR(fast[i], ref[i], 1e-9) << "point " << i;
  }
  const TvlaReport fast_report = acc.tvla(-1, 0);
  const TvlaReport ref_report = tvla_assess(pop_a, pop_b);
  EXPECT_EQ(fast_report.max_index, ref_report.max_index);
  EXPECT_EQ(fast_report.leaking_points, ref_report.leaking_points);
  EXPECT_NEAR(fast_report.max_abs_t, ref_report.max_abs_t, 1e-9);
}

TEST(ClassStatsStreaming, VarianceMatchesTwoPass) {
  const TraceSet set = labelled_set(3, 9, 32, 0, 53);
  ClassStats acc(32);
  acc.add_all(set);
  for (const std::int32_t label : acc.labels()) {
    std::vector<const Trace*> members;
    for (const Trace& t : set) {
      if (t.label == label) members.push_back(&t);
    }
    const std::vector<double> var = acc.variance(label);
    for (std::size_t i = 0; i < 32; ++i) {
      double mean = 0.0;
      for (const Trace* t : members) mean += t->samples[i];
      mean /= static_cast<double>(members.size());
      double m2 = 0.0;
      for (const Trace* t : members) {
        const double d = t->samples[i] - mean;
        m2 += d * d;
      }
      EXPECT_NEAR(var[i], m2 / static_cast<double>(members.size() - 1), 1e-10);
    }
  }
}

TEST(ClassStatsStreaming, MergeMatchesStreamingWithinTolerance) {
  const TraceSet set = labelled_set(4, 20, 48, 0, 54);
  ClassStats whole(48);
  whole.add_all(set);
  // Partials over thirds, merged in order (the Chan path).
  ClassStats merged(48);
  for (std::size_t part = 0; part < 3; ++part) {
    ClassStats partial(48);
    for (std::size_t i = part * set.size() / 3; i < (part + 1) * set.size() / 3; ++i) {
      partial.add(set[i].label, set[i].samples);
    }
    merged.merge(partial);
  }
  EXPECT_EQ(merged.total_count(), whole.total_count());
  EXPECT_EQ(merged.labels(), whole.labels());
  // The sum track merges by plain addition and the Welford track by Chan
  // updates: both are statistically exact but associate differently, so the
  // comparison is tolerance- not bit-gated.
  for (const std::int32_t label : whole.labels()) {
    const auto whole_means = whole.means();
    const auto merged_means = merged.means();
    const auto& wm = whole_means.at(label);
    const auto& mm = merged_means.at(label);
    const auto wv = whole.variance(label);
    const auto mv = merged.variance(label);
    for (std::size_t i = 0; i < 48; ++i) {
      EXPECT_NEAR(mm[i], wm[i], 1e-12);
      EXPECT_NEAR(mv[i], wv[i], 1e-10);
    }
  }
}

TEST(ClassStatsStreaming, CampaignRunnerIdenticalAcrossWorkerCounts) {
  // Fixed 32-trace blocks merged in block order: the campaign-level
  // accumulator must be byte-identical for every pool size, including the
  // serial path.
  const TraceSet set = labelled_set(5, 25, 40, 0, 55);
  ClassStats baseline = core::CampaignRunner(0).class_stats(set, 40);
  for (const std::size_t workers : {1u, 4u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    core::CampaignRunner runner(workers);
    const ClassStats parallel = runner.class_stats(set, 40);
    EXPECT_EQ(parallel.total_count(), baseline.total_count());
    EXPECT_EQ(parallel.means(), baseline.means());  // bit-equal
    EXPECT_EQ(parallel.sosd(), baseline.sosd());
    for (const std::int32_t label : baseline.labels()) {
      EXPECT_EQ(parallel.variance(label), baseline.variance(label));
    }
    EXPECT_EQ(parallel.welch_t(-2, 2), baseline.welch_t(-2, 2));
  }
}

TEST(ClassStatsStreaming, RejectsBadInput) {
  EXPECT_THROW(ClassStats(0), std::invalid_argument);
  ClassStats acc(16);
  EXPECT_THROW(acc.add(Trace::kNoLabel, std::vector<double>(16, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(acc.add(1, std::vector<double>(8, 0.0)), std::invalid_argument);
  acc.add(1, std::vector<double>(16, 0.0));
  EXPECT_THROW(acc.welch_t(1, 2), std::invalid_argument);  // unknown label
  acc.add(2, std::vector<double>(16, 0.0));
  EXPECT_THROW(acc.welch_t(1, 2), std::invalid_argument);  // < 2 per class
  EXPECT_THROW(acc.variance(3), std::invalid_argument);
  ClassStats other(32);
  EXPECT_THROW(acc.merge(other), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RankAccumulator merge

TEST(RankAccumulatorMerge, BlockMergeReproducesSequentialAccumulator) {
  num::Xoshiro256StarStar rng(61);
  std::vector<std::size_t> ranks(100);
  for (std::size_t& r : ranks) r = 1 + rng() % 25;

  RankAccumulator sequential;
  for (const std::size_t r : ranks) sequential.add(r);

  RankAccumulator merged;
  for (std::size_t part = 0; part < 4; ++part) {
    RankAccumulator partial;
    for (std::size_t i = part * 25; i < (part + 1) * 25; ++i) partial.add(ranks[i]);
    merged.merge(partial);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.guessing_entropy(), sequential.guessing_entropy());  // bit-equal
  EXPECT_EQ(merged.median_rank(), sequential.median_rank());
  for (const std::size_t k : {1u, 3u, 10u}) {
    EXPECT_EQ(merged.success_rate_at(k), sequential.success_rate_at(k));
  }
}

// ---------------------------------------------------------------------------
// Flat-GSO LLL

lattice::Basis fuzz_basis(num::Xoshiro256StarStar& rng, std::size_t n, bool boost_diag) {
  lattice::Basis basis(n, std::vector<std::int64_t>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) basis[i][j] = rng.uniform_int(-30, 30);
    if (boost_diag) basis[i][i] += 100;
  }
  return basis;
}

TEST(LatticeFlatLll, FuzzMatchesReference) {
  num::Xoshiro256StarStar rng(71);
  for (std::uint64_t round = 0; round < 12; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::size_t n = 4 + round % 9;
    lattice::Basis fast_basis = fuzz_basis(rng, n, round % 2 == 0);
    lattice::Basis ref_basis = fast_basis;
    const std::size_t fast_swaps = lattice::lll_reduce(fast_basis);
    const std::size_t ref_swaps = lattice::lll_reduce_reference(ref_basis);
    EXPECT_EQ(fast_basis, ref_basis);  // exact integer equality
    EXPECT_EQ(fast_swaps, ref_swaps);
    EXPECT_TRUE(lattice::is_lll_reduced(fast_basis));
  }
}

TEST(LatticeFlatLll, RankDeficientBasisMatchesReference) {
  // A duplicated row degenerates the GSO (zero ||b*||): the flat kernel's
  // degenerate-norm handling must mirror compute_gso's exactly.
  num::Xoshiro256StarStar rng(73);
  lattice::Basis fast_basis = fuzz_basis(rng, 6, true);
  fast_basis[4] = fast_basis[1];
  lattice::Basis ref_basis = fast_basis;
  const std::size_t fast_swaps = lattice::lll_reduce(fast_basis);
  const std::size_t ref_swaps = lattice::lll_reduce_reference(ref_basis);
  EXPECT_EQ(fast_basis, ref_basis);
  EXPECT_EQ(fast_swaps, ref_swaps);
}

TEST(LatticeFlatLll, ReducesKnownBasisLikeReference) {
  // The classic worked example: the flat path must leave the already-agreed
  // reduced form in place.
  lattice::Basis basis = {{1, 1, 1}, {-1, 0, 2}, {3, 5, 6}};
  lattice::Basis ref = basis;
  lattice::lll_reduce(basis);
  lattice::lll_reduce_reference(ref);
  EXPECT_EQ(basis, ref);
  EXPECT_TRUE(lattice::is_lll_reduced(basis));
}

}  // namespace
