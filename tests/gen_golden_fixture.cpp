// Regenerates the golden regression fixture under tests/data/:
//
//   golden_trace.bin     one serialized capture (sca::TraceSet, 1 trace) of
//                        the clean 16-coefficient sampler firmware, seed 777
//   golden_expected.txt  the sign/value recovery the pinned pipeline
//                        produces for that trace: one line per window with
//                        "<index> <sign> <value> <quality> <truth>"
//
// test_golden_fixture.cpp replays the attack against the serialized trace
// and compares to the expected file, so any behavioural drift in
// segmentation, classification, or template numerics shows up as a diff
// against committed artifacts. Rerun this tool (build/tests/gen_golden_fixture
// [output_dir]) only when a change is *supposed* to alter the recovery, and
// commit the regenerated files with it.

#include <cstdio>
#include <string>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "sca/trace.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

// Shared with test_golden_fixture.cpp: the fixture pins *this* pipeline.
CampaignConfig fixture_capture_config() {
  CampaignConfig cfg;
  cfg.n = 16;  // keeps the serialized trace small
  cfg.num_workers = 0;
  return cfg;
}

AttackConfig fixture_attack_config() {
  AttackConfig acfg;
  acfg.abstain_margin = 0.30;
  acfg.low_confidence_margin = 0.45;
  acfg.value_commit_threshold = 0.05;
  acfg.sign_fit_threshold = 2.5;
  acfg.value_fit_threshold = 4.0;
  return acfg;
}

constexpr std::uint64_t kCaptureSeed = 777;

}  // namespace

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "tests/data";

  CampaignConfig train_cfg;
  train_cfg.n = 64;
  train_cfg.num_workers = 0;
  SamplerCampaign profiler(train_cfg);
  RevealAttack attack(fixture_attack_config());
  std::printf("training on 120 clean profiling runs...\n");
  attack.train(profiler.collect_windows(120, /*seed_base=*/1));

  const CampaignConfig cfg = fixture_capture_config();
  SamplerCampaign campaign(cfg);
  const FullCapture cap = campaign.capture(kCaptureSeed);
  if (cap.segments.size() != cfg.n) {
    std::fprintf(stderr, "capture segmentation yielded %zu/%zu windows\n",
                 cap.segments.size(), cfg.n);
    return 1;
  }

  sca::TraceSet set;
  sca::Trace t;
  t.samples = cap.trace;
  t.label = 0;
  set.add(std::move(t));
  const std::string bin_path = out_dir + "/golden_trace.bin";
  set.save(bin_path);
  std::printf("wrote %s (%zu samples)\n", bin_path.c_str(), cap.trace.size());

  const RobustCaptureResult res =
      attack.attack_capture_robust(cap.trace, cfg.n, cfg.segmentation);
  const std::string txt_path = out_dir + "/golden_expected.txt";
  std::FILE* out = std::fopen(txt_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", txt_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "# golden recovery for golden_trace.bin (capture seed %llu)\n"
               "# index sign value quality truth   (quality: 0=ok 1=lowconf 2=abstained)\n",
               static_cast<unsigned long long>(kCaptureSeed));
  for (std::size_t i = 0; i < res.guesses.size(); ++i) {
    const CoefficientGuess& g = res.guesses[i];
    std::fprintf(out, "%zu %d %d %d %lld\n", i, g.sign, g.value,
                 static_cast<int>(g.quality), static_cast<long long>(cap.noise[i]));
  }
  std::fclose(out);
  std::printf("wrote %s (%zu windows)\n", txt_path.c_str(), res.guesses.size());
  return 0;
}
