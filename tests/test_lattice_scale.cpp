// Differential suite for the paper-scale lattice plane: the blocked /
// sparse / batched DBDD matrix fast paths vs the dense per-hint reference,
// the maintained FlatGso vs compute_gso, the fast BKZ loop vs the
// per-position-recompute reference, the CN11-style BKZ simulator vs its
// naive anchor, and the WorkerPool hint sweeps' worker-count invariance.
//
// Registered under both the ASan/UBSan and TSan configs (see
// tests/CMakeLists.txt): the flat Sigma/GSO buffers are the riskiest
// pointer arithmetic in the analysis plane, and the sweep fans out over
// the work-stealing pool.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/hint_sweep.hpp"
#include "lattice/bkz_sim.hpp"
#include "lattice/lattice.hpp"
#include "lwe/dbdd.hpp"
#include "lwe/dbdd_matrix.hpp"

using namespace reveal;
using lwe::DbddMatrixEstimator;
using lwe::DbddMatrixEstimatorReference;
using lwe::HintOutcome;

namespace {

lwe::DbddParams tight_params(std::size_t n) {
  // q tight enough that the instance is not already broken at beta = 2.
  lwe::DbddParams p;
  p.secret_dim = n;
  p.error_dim = n;
  p.q = 67.0;
  p.secret_variance = 2.0 / 3.0;
  p.error_variance = 2.25;
  return p;
}

double max_sigma_diff(const num::Matrix& a, const num::Matrix& b) {
  double md = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      md = std::max(md, std::fabs(a(i, j) - b(i, j)));
  return md;
}

std::vector<double> random_unit_dir(std::mt19937_64& rng, std::size_t dim) {
  std::normal_distribution<double> gauss;
  std::vector<double> v(dim);
  double nsq = 0.0;
  for (double& x : v) {
    x = gauss(rng);
    nsq += x * x;
  }
  const double inv = 1.0 / std::sqrt(nsq);
  for (double& x : v) x *= inv;
  return v;
}

lattice::Basis random_basis(std::mt19937_64& rng, std::size_t n, int spread,
                            int diag) {
  lattice::Basis basis(n, std::vector<std::int64_t>(n, 0));
  std::uniform_int_distribution<int> entry(-spread, spread);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) basis[i][j] = entry(rng);
    basis[i][i] += diag;
  }
  return basis;
}

}  // namespace

// ---------------------------------------------------------------------------
// Matrix estimator: fast vs reference differential fuzz.

TEST(MatrixDifferential, MixedSequencesAgreeWithReference) {
  std::mt19937_64 rng(0xfeedULL);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 12 + 10 * static_cast<std::size_t>(trial % 3);
    const auto params = tight_params(n);
    const std::size_t ambient = 2 * n;
    DbddMatrixEstimator fast(params);
    DbddMatrixEstimatorReference ref(params);

    std::uniform_int_distribution<int> op_pick(0, 4);
    std::uniform_int_distribution<std::size_t> coord_pick(0, ambient - 1);
    std::uniform_real_distribution<double> eps_pick(0.3, 2.0);
    std::vector<double> last_dir;
    for (int step = 0; step < 40; ++step) {
      switch (op_pick(rng)) {
        case 0: {  // coordinate perfect hint
          const std::size_t c = coord_pick(rng);
          EXPECT_EQ(fast.integrate_perfect_coordinate_hints({c}),
                    ref.integrate_perfect_coordinate_hints({c}));
          break;
        }
        case 1: {  // dense perfect hint
          last_dir = random_unit_dir(rng, ambient);
          EXPECT_EQ(fast.integrate_perfect_hint(last_dir),
                    ref.integrate_perfect_hint(last_dir));
          break;
        }
        case 2: {  // dense approximate hint
          const auto v = random_unit_dir(rng, ambient);
          const double eps = eps_pick(rng);
          EXPECT_EQ(fast.integrate_approximate_hint(v, eps),
                    ref.integrate_approximate_hint(v, eps));
          break;
        }
        case 3: {  // batched dense perfect hints
          std::vector<std::vector<double>> dirs;
          for (int k = 0; k < 3; ++k) dirs.push_back(random_unit_dir(rng, ambient));
          EXPECT_EQ(fast.integrate_perfect_hints(dirs),
                    ref.integrate_perfect_hints(dirs));
          break;
        }
        default: {  // repeated direction: exercise the degenerate path
          if (last_dir.empty()) break;
          EXPECT_EQ(fast.integrate_perfect_hint(last_dir),
                    ref.integrate_perfect_hint(last_dir));
          break;
        }
      }
    }
    EXPECT_EQ(fast.dim(), ref.dim());
    EXPECT_EQ(fast.rejected_hints(), ref.rejected_hints());
    EXPECT_NEAR(fast.logvol(), ref.logvol(),
                1e-9 * std::max(1.0, std::fabs(ref.logvol())));
    EXPECT_NEAR(fast.estimate().beta, ref.estimate().beta, 1e-9);
    EXPECT_LE(max_sigma_diff(fast.sigma(), ref.sigma()), 1e-9);
  }
}

TEST(MatrixDifferential, CoordinateSequencesAreBitIdentical) {
  std::mt19937_64 rng(0xc0ffeeULL);
  for (int trial = 0; trial < 4; ++trial) {
    const auto params = tight_params(24);
    DbddMatrixEstimator fast(params);
    DbddMatrixEstimatorReference ref(params);
    std::uniform_int_distribution<std::size_t> coord_pick(0, 47);
    for (int step = 0; step < 40; ++step) {
      const std::size_t c = coord_pick(rng);
      ASSERT_EQ(fast.integrate_perfect_coordinate_hints({c}),
                ref.integrate_perfect_coordinate_hints({c}));
    }
    // Coordinate-only sequences replay the reference arithmetic exactly.
    EXPECT_EQ(fast.logvol(), ref.logvol());
    EXPECT_EQ(fast.estimate().beta, ref.estimate().beta);
    EXPECT_EQ(max_sigma_diff(fast.sigma(), ref.sigma()), 0.0);
  }
}

TEST(MatrixDifferential, BatchedCoordinateHintsMatchSequentialBitExactly) {
  const auto params = tight_params(24);
  std::vector<std::size_t> coords = {3, 17, 40, 3, 9, 47, 22, 9, 31, 0};
  DbddMatrixEstimator batched(params);
  DbddMatrixEstimator sequential(params);
  const auto batch_out = batched.integrate_perfect_coordinate_hints(coords);
  std::vector<HintOutcome> seq_out;
  for (const std::size_t c : coords)
    seq_out.push_back(sequential.integrate_perfect_coordinate_hints({c})[0]);
  EXPECT_EQ(batch_out, seq_out);
  EXPECT_EQ(batched.logvol(), sequential.logvol());
  EXPECT_EQ(max_sigma_diff(batched.sigma(), sequential.sigma()), 0.0);
}

TEST(MatrixDifferential, BatchedDenseHintsMatchSequential) {
  std::mt19937_64 rng(99);
  const auto params = tight_params(20);
  std::vector<std::vector<double>> dirs;
  for (int k = 0; k < 9; ++k) dirs.push_back(random_unit_dir(rng, 40));
  DbddMatrixEstimator batched(params);
  DbddMatrixEstimator sequential(params);
  const auto batch_out = batched.integrate_perfect_hints(dirs);
  std::vector<HintOutcome> seq_out;
  for (const auto& v : dirs) seq_out.push_back(sequential.integrate_perfect_hint(v));
  EXPECT_EQ(batch_out, seq_out);
  EXPECT_NEAR(batched.logvol(), sequential.logvol(), 1e-9);
  EXPECT_LE(max_sigma_diff(batched.sigma(), sequential.sigma()), 1e-9);
}

TEST(MatrixOutcomes, ExhaustionIsTypedNotThrown) {
  lwe::DbddParams p = tight_params(3);  // ambient dim 6
  DbddMatrixEstimator est(p);
  std::size_t applied = 0;
  std::vector<HintOutcome> tail;
  for (std::size_t c = 0; c < 6; ++c) {
    const HintOutcome out = est.integrate_perfect_coordinate_hints({c})[0];
    if (out == HintOutcome::kApplied) ++applied;
    tail.push_back(out);
  }
  // d - 1 = 5 coordinates can be eliminated; the sixth must be a typed
  // rejection (never a throw mid-sweep).
  EXPECT_EQ(applied, 5u);
  EXPECT_EQ(tail.back(), HintOutcome::kExhausted);
  EXPECT_EQ(est.dim(), 2u);
  // Approximate hints still integrate into the remaining coordinate.
  std::vector<double> v(6, 0.0);
  v[5] = 1.0;
  EXPECT_EQ(est.integrate_approximate_hint(v, 1.0), HintOutcome::kApplied);
}

TEST(MatrixNeumaier, TenThousandHintLogvolStaysTight) {
  // Satellite regression: 10k approximate hints accumulate the log-volume
  // through the Neumaier-compensated sum; fast and reference must agree to
  // ~1e-9 ABSOLUTE after the whole sequence (a naive double accumulator
  // drifts well past that across 10k heterogeneous contributions), and the
  // periodically re-symmetrized Sigma must stay symmetric and close to the
  // reference's.
  const auto params = tight_params(24);
  DbddMatrixEstimator fast(params);
  DbddMatrixEstimatorReference ref(params);
  std::mt19937_64 rng(2024);
  std::uniform_int_distribution<std::size_t> coord_pick(0, 47);
  std::uniform_real_distribution<double> eps_pick(0.8, 40.0);
  std::vector<double> v(48, 0.0);
  for (int step = 0; step < 10000; ++step) {
    const std::size_t c = coord_pick(rng);
    const double eps = eps_pick(rng);
    v[c] = 1.0;
    ASSERT_EQ(fast.integrate_approximate_hint(v, eps),
              ref.integrate_approximate_hint(v, eps));
    v[c] = 0.0;
  }
  EXPECT_NEAR(fast.logvol(), ref.logvol(), 1e-9);
  const num::Matrix sf = fast.sigma();
  double max_asym = 0.0;
  for (std::size_t i = 0; i < sf.rows(); ++i)
    for (std::size_t j = i + 1; j < sf.cols(); ++j)
      max_asym = std::max(max_asym, std::fabs(sf(i, j) - sf(j, i)));
  EXPECT_EQ(max_asym, 0.0);  // mirrored upper triangle is canonical
  EXPECT_LE(max_sigma_diff(sf, ref.sigma()), 1e-9);
}

TEST(MatrixLite, AgreesWithLightweightAtPaperDims) {
  // n = m = 1024 smoke: the full-Sigma plane and the lightweight tracker
  // must tell the same story on the paper's instance under coordinate
  // hints.
  lwe::DbddParams p;
  p.secret_dim = p.error_dim = 1024;
  p.q = 132120577.0;
  p.secret_variance = p.error_variance = 3.2 * 3.2;
  DbddMatrixEstimator full(p);
  lwe::DbddEstimator lite(p);
  std::vector<std::size_t> coords;
  for (std::size_t i = 0; i < 200; ++i) coords.push_back(i);
  (void)full.integrate_perfect_coordinate_hints(coords);
  lite.integrate_perfect_error_hints(200);
  EXPECT_EQ(full.dim(), lite.dim());
  EXPECT_NEAR(full.logvol(), lite.logvol(), 1e-6 * std::fabs(lite.logvol()));
  EXPECT_NEAR(full.estimate().beta, lite.estimate().beta, 0.1);
}

// ---------------------------------------------------------------------------
// Incremental GSO: FlatGso::ensure vs compute_gso, and enumeration parity.

TEST(FlatGsoIncremental, EnsureMatchesComputeGsoAfterPerturbations) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 6; ++trial) {
    lattice::Basis basis = random_basis(rng, 14, 30, 90);
    lattice::FlatGso gso(basis);
    gso.ensure(basis.size() - 1, basis);
    std::uniform_int_distribution<std::size_t> row_pick(1, basis.size() - 1);
    std::uniform_int_distribution<int> mul(-3, 3);
    for (int step = 0; step < 12; ++step) {
      // Size-reduction-shaped perturbation: row k -= m * row j (j < k).
      const std::size_t k = row_pick(rng);
      const std::size_t j = k - 1;
      const int m = mul(rng);
      for (std::size_t c = 0; c < basis[k].size(); ++c)
        basis[k][c] -= m * basis[j][c];
      gso.invalidate_from(k);
      gso.ensure(basis.size() - 1, basis);
      const lattice::Gso full = lattice::compute_gso(basis);
      for (std::size_t i = 0; i < basis.size(); ++i) {
        ASSERT_EQ(gso.norms_sq(i), full.norms_sq[i]) << "row " << i;
        for (std::size_t c = 0; c < i; ++c)
          ASSERT_EQ(gso.mu(i, c), full.mu[i][c]) << i << "," << c;
      }
    }
  }
}

TEST(FlatGsoIncremental, EnumerationAgreesAcrossGsoRepresentations) {
  std::mt19937_64 rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const lattice::Basis basis = random_basis(rng, 12, 25, 70);
    const lattice::Gso full = lattice::compute_gso(basis);
    lattice::FlatGso flat(basis);
    flat.ensure(basis.size() - 1, basis);
    for (std::size_t begin = 0; begin + 2 <= basis.size(); begin += 3) {
      const std::size_t end = std::min(begin + 6, basis.size());
      const auto a = lattice::enumerate_shortest(full, begin, end);
      const auto b = lattice::enumerate_shortest(flat, begin, end);
      ASSERT_EQ(a.found, b.found);
      ASSERT_EQ(a.coefficients, b.coefficients);
      ASSERT_EQ(a.norm_sq, b.norm_sq);
    }
  }
}

TEST(BkzDifferential, FastMatchesReferenceFuzz) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 10 + 4 * static_cast<std::size_t>(trial % 3);
    lattice::BkzParams params;
    params.block_size = 4 + static_cast<std::size_t>(trial % 3) * 3;
    params.max_tours = 6;
    lattice::Basis fast_basis = random_basis(rng, n, 40, 120);
    lattice::Basis ref_basis = fast_basis;
    const std::size_t fast_ins = lattice::bkz_reduce(fast_basis, params);
    const std::size_t ref_ins = lattice::bkz_reduce_reference(ref_basis, params);
    EXPECT_EQ(fast_ins, ref_ins);
    EXPECT_EQ(fast_basis, ref_basis);
  }
}

// ---------------------------------------------------------------------------
// BKZ simulator: fast vs naive anchor, and external anchors.

TEST(BkzSimDifferential, ProfilesAreBitIdentical) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t d = 30 + 17 * static_cast<std::size_t>(trial);
    std::vector<double> profile(d);
    const double slope = 0.004 + 0.004 * static_cast<double>(trial % 4);
    for (std::size_t i = 0; i < d; ++i)
      profile[i] =
          slope * (static_cast<double>(d) / 2 - static_cast<double>(i)) +
          noise(rng) + 1.5;
    lattice::BkzSimParams params;
    params.max_tours = 32;
    const std::size_t beta = 2 + static_cast<std::size_t>(rng() % (d - 2));
    const auto fast = lattice::simulate_bkz_profile(profile, beta, params);
    const auto ref = lattice::simulate_bkz_profile_reference(profile, beta, params);
    ASSERT_EQ(fast, ref) << "d=" << d << " beta=" << beta;
  }
}

TEST(BkzSimDifferential, IntersectBetaMatchesReferenceFuzz) {
  std::mt19937_64 rng(6);
  std::uniform_real_distribution<double> noise(-0.02, 0.02);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t d = 40 + 23 * static_cast<std::size_t>(trial);
    std::vector<double> profile(d);
    const double slope = 0.004 + 0.005 * static_cast<double>(trial % 3);
    for (std::size_t i = 0; i < d; ++i)
      profile[i] =
          slope * (static_cast<double>(d) / 2 - static_cast<double>(i)) +
          noise(rng) + 2.0;
    lattice::BkzSimParams params;
    params.max_tours = 24;
    EXPECT_EQ(lattice::simulated_intersect_beta(profile, params),
              lattice::simulated_intersect_beta_reference(profile, params))
        << "d=" << d;
  }
}

TEST(BkzSimAnchor, TracksClosedFormOnSmallInstances) {
  // Overlapping-dimension differential anchor: in regimes where the GSA
  // closed form is trustworthy, the simulator must land within a few bikz.
  for (const std::size_t n : {64u, 128u}) {
    lwe::DbddParams p;
    p.secret_dim = p.error_dim = n;
    p.q = 3329.0;
    p.secret_variance = p.error_variance = 2.25;
    const lwe::DbddEstimator est(p);
    const double closed = est.estimate().beta;
    const double sim = est.estimate_simulated().beta;
    const double sim_ref = est.estimate_simulated_reference().beta;
    EXPECT_EQ(sim, sim_ref);
    EXPECT_NEAR(sim, closed, 20.0) << "n=" << n;
  }
}

TEST(BkzSimAnchor, PaperScaleCurveIsSane) {
  // n = m = 1024, q = 132120577, sigma = 3.2 (paper section V): no hints
  // lands near the paper's 382 bikz; hints only ever lower the estimate;
  // full error knowledge breaks the instance outright.
  lwe::DbddParams p;
  p.secret_dim = p.error_dim = 1024;
  p.q = 132120577.0;
  p.secret_variance = p.error_variance = 3.2 * 3.2;

  lwe::DbddEstimator none(p);
  const double closed0 = none.estimate().beta;
  const double sim0 = none.estimate_simulated().beta;
  EXPECT_NEAR(sim0, 382.25, 30.0);  // paper Table III headline
  EXPECT_NEAR(sim0, closed0, 30.0);

  double prev = sim0;
  for (const std::size_t hints : {512u, 900u}) {
    lwe::DbddEstimator est(p);
    est.integrate_perfect_error_hints(hints);
    const double sim = est.estimate_simulated().beta;
    EXPECT_LT(sim, prev);
    EXPECT_NEAR(sim, est.estimate().beta, 10.0) << hints << " hints";
    prev = sim;
  }

  lwe::DbddEstimator full(p);
  full.integrate_perfect_error_hints(1024);
  EXPECT_LE(full.estimate_simulated().beta, 40.0);
}

TEST(BkzSimAnchor, SmallDimensionActualReductionAnchor) {
  // Ground-truth anchor with generous margins: a planted near-diagonal
  // basis is easy (its profile is balanced), and actual BKZ at the block
  // size the simulator regime implies must find a vector no longer than
  // the Gaussian-heuristic ballpark of the instance.
  std::mt19937_64 rng(404);
  lattice::Basis basis = random_basis(rng, 20, 10, 40);
  long double det_proxy = 0.0;
  {
    const lattice::Gso gso = lattice::compute_gso(basis);
    for (std::size_t i = 0; i < basis.size(); ++i)
      det_proxy += 0.5L * std::log(static_cast<double>(gso.norms_sq[i]));
  }
  lattice::BkzParams params;
  params.block_size = 8;
  (void)lattice::bkz_reduce(basis, params);
  const std::vector<std::int64_t> shortest = lattice::shortest_row(basis);
  const double found_log = 0.5 * std::log(static_cast<double>(
                               lattice::norm_sq(shortest)));
  const double gh_log = lattice::log_gaussian_heuristic(
      basis.size(), static_cast<double>(det_proxy));
  EXPECT_LE(found_log, gh_log + 1.5);  // within e^1.5 of the GH radius
}

// ---------------------------------------------------------------------------
// Hint sweeps: worker-count invariance and statistics.

TEST(HintSweep, WorkerCountInvariance) {
  core::HintSweepConfig cfg;
  cfg.params = tight_params(96);
  cfg.counts = {16, 48, 80};
  cfg.orders = 5;
  cfg.base_seed = 7;
  std::vector<core::SweepHint> pool(96);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    pool[i].kind = i % 3 == 0 ? core::SweepHint::Kind::kPerfect
                 : i % 3 == 1 ? core::SweepHint::Kind::kApproximate
                              : core::SweepHint::Kind::kPosterior;
    pool[i].variance = 0.4 + 0.2 * static_cast<double>(i % 4);
  }
  cfg.num_workers = 0;
  const auto lite0 = core::run_hint_sweep(cfg, pool);
  const auto mat0 = core::run_matrix_hint_sweep(cfg, pool);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    cfg.num_workers = workers;
    EXPECT_EQ(core::run_hint_sweep(cfg, pool).betas, lite0.betas)
        << workers << " workers";
    EXPECT_EQ(core::run_matrix_hint_sweep(cfg, pool).betas, mat0.betas)
        << workers << " workers (matrix)";
  }
  // Cell statistics are a pure function of the beta grid.
  ASSERT_EQ(lite0.cells.size(), cfg.counts.size());
  std::size_t total = 0;
  for (std::size_t ci = 0; ci < lite0.cells.size(); ++ci) {
    const auto& cell = lite0.cells[ci];
    EXPECT_EQ(cell.count, cfg.counts[ci]);
    EXPECT_EQ(cell.beta.count(), cfg.orders);
    double lo = 1e300, hi = -1e300;
    for (std::size_t oi = 0; oi < cfg.orders; ++oi) {
      lo = std::min(lo, lite0.betas[ci * cfg.orders + oi]);
      hi = std::max(hi, lite0.betas[ci * cfg.orders + oi]);
    }
    EXPECT_EQ(cell.beta.min(), lo);
    EXPECT_EQ(cell.beta.max(), hi);
    total += cfg.orders;
  }
  EXPECT_EQ(lite0.overall_beta.count(), total);
}

TEST(HintSweep, MoreHintsLowerTheCurve) {
  core::HintSweepConfig cfg;
  cfg.params = tight_params(96);
  cfg.counts = {0, 16, 48};
  cfg.orders = 4;
  std::vector<core::SweepHint> pool(96);  // all perfect
  cfg.num_workers = 2;
  const auto r = core::run_hint_sweep(cfg, pool);
  EXPECT_GE(r.cells[0].beta.mean(), r.cells[1].beta.mean());
  EXPECT_GT(r.cells[1].beta.mean(), r.cells[2].beta.mean());
}

TEST(HintSweep, Validation) {
  core::HintSweepConfig cfg;
  cfg.params = tight_params(8);
  cfg.counts = {4};
  std::vector<core::SweepHint> pool(8);
  cfg.orders = 0;
  EXPECT_THROW((void)core::run_hint_sweep(cfg, pool), std::invalid_argument);
  cfg.orders = 2;
  cfg.counts = {};
  EXPECT_THROW((void)core::run_hint_sweep(cfg, pool), std::invalid_argument);
  cfg.counts = {9};  // exceeds pool
  EXPECT_THROW((void)core::run_hint_sweep(cfg, pool), std::invalid_argument);
  cfg.counts = {4};
  EXPECT_NO_THROW((void)core::run_hint_sweep(cfg, pool));
}
