// Serialization roundtrips, corruption handling, and an offline
// (serialize -> deserialize -> decrypt) workflow.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "seal/decryptor.hpp"
#include "seal/encryptor.hpp"
#include "seal/serialization.hpp"

namespace seal = reveal::seal;

namespace {

struct World {
  World()
      : ctx(seal::EncryptionParameters::toy_256()),
        rng(88),
        keygen(ctx, rng),
        encryptor(ctx, keygen.public_key()),
        decryptor(ctx, keygen.secret_key()) {}
  seal::Context ctx;
  seal::StandardRandomGenerator rng;
  seal::KeyGenerator keygen;
  seal::Encryptor encryptor;
  seal::Decryptor decryptor;
};

}  // namespace

TEST(Serialization, PolyRoundtrip) {
  seal::Poly p(16, 2);
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t i = 0; i < 16; ++i) p.at(i, j) = i * 100 + j;
  }
  std::stringstream ss;
  seal::save_poly(p, ss);
  const seal::Poly q = seal::load_poly(ss);
  EXPECT_EQ(p, q);
}

TEST(Serialization, PlaintextRoundtrip) {
  const seal::Plaintext plain(std::vector<std::uint64_t>{1, 2, 3, 0, 5});
  std::stringstream ss;
  seal::save_plaintext(plain, ss);
  EXPECT_EQ(seal::load_plaintext(ss), plain);
}

TEST(Serialization, CiphertextRoundtripDecrypts) {
  World w;
  const seal::Plaintext plain(std::vector<std::uint64_t>{7, 8, 9});
  const seal::Ciphertext ct = w.encryptor.encrypt(plain, w.rng);
  std::stringstream ss;
  seal::save_ciphertext(ct, ss);
  const seal::Ciphertext loaded = seal::load_ciphertext(ss);
  ASSERT_EQ(loaded.size(), ct.size());
  EXPECT_EQ(loaded[0], ct[0]);
  EXPECT_EQ(w.decryptor.decrypt(loaded), plain);
}

TEST(Serialization, KeyRoundtrips) {
  World w;
  std::stringstream pk_stream, sk_stream;
  seal::save_public_key(w.keygen.public_key(), pk_stream);
  seal::save_secret_key(w.keygen.secret_key(), sk_stream);
  const seal::PublicKey pk = seal::load_public_key(pk_stream);
  const seal::SecretKey sk = seal::load_secret_key(sk_stream);
  EXPECT_EQ(pk.p0, w.keygen.public_key().p0);
  EXPECT_EQ(pk.p1, w.keygen.public_key().p1);
  EXPECT_EQ(sk.s, w.keygen.secret_key().s);

  // Loaded keys are fully functional.
  const seal::Encryptor enc2(w.ctx, pk);
  const seal::Decryptor dec2(w.ctx, sk);
  const seal::Plaintext plain(std::uint64_t{33});
  EXPECT_EQ(dec2.decrypt(enc2.encrypt(plain, w.rng)), plain);
}

TEST(Serialization, WrongMagicRejected) {
  World w;
  std::stringstream ss;
  seal::save_public_key(w.keygen.public_key(), ss);
  EXPECT_THROW((void)seal::load_ciphertext(ss), std::runtime_error);
}

TEST(Serialization, TruncatedStreamRejected) {
  World w;
  std::stringstream ss;
  seal::save_ciphertext(w.encryptor.encrypt(seal::Plaintext(std::uint64_t{1}), w.rng), ss);
  const std::string full = ss.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)seal::load_ciphertext(truncated), std::runtime_error);
}

TEST(Serialization, GarbageRejected) {
  std::stringstream ss("this is definitely not a ciphertext");
  EXPECT_THROW((void)seal::load_ciphertext(ss), std::runtime_error);
}

TEST(Serialization, ConformsTo) {
  World w;
  seal::Poly good(w.ctx.n(), w.ctx.coeff_mod_count());
  EXPECT_TRUE(seal::conforms_to(good, w.ctx));
  seal::Poly wrong_shape(w.ctx.n() / 2, 1);
  EXPECT_FALSE(seal::conforms_to(wrong_shape, w.ctx));
  seal::Poly unreduced(w.ctx.n(), w.ctx.coeff_mod_count());
  unreduced.at(0, 0) = w.ctx.coeff_modulus()[0].value();  // == q: not reduced
  EXPECT_FALSE(seal::conforms_to(unreduced, w.ctx));
}

TEST(Serialization, FileHelpersRoundtrip) {
  World w;
  const auto dir = std::filesystem::temp_directory_path();
  const std::string ct_path = (dir / "reveal_ct.bin").string();
  const std::string pk_path = (dir / "reveal_pk.bin").string();

  const seal::Plaintext plain(std::vector<std::uint64_t>{4, 5});
  seal::save_ciphertext_file(w.encryptor.encrypt(plain, w.rng), ct_path);
  seal::save_public_key_file(w.keygen.public_key(), pk_path);

  const seal::Ciphertext ct = seal::load_ciphertext_file(ct_path);
  const seal::PublicKey pk = seal::load_public_key_file(pk_path);
  EXPECT_EQ(w.decryptor.decrypt(ct), plain);
  EXPECT_EQ(pk.p1, w.keygen.public_key().p1);

  std::remove(ct_path.c_str());
  std::remove(pk_path.c_str());
  EXPECT_THROW((void)seal::load_ciphertext_file("/nonexistent/x.bin"), std::runtime_error);
}
