// Fault-injection harness + degradation-aware recovery pipeline tests:
// seeded fault reproducibility, robust segmentation under corruption,
// classifier abstention, quality-gated hint routing, and the guarantee
// that degraded captures never poison the estimator with wrong perfect
// hints.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/acquisition.hpp"
#include "core/attack.hpp"
#include "core/hints.hpp"
#include "lwe/dbdd.hpp"
#include "power/fault_injector.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::core;
using reveal::power::FaultInjector;
using reveal::power::FaultSpec;

namespace {

std::vector<double> ramp_trace(std::size_t n) {
  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i)
    t[i] = 4.0 + std::sin(static_cast<double>(i) * 0.1) + 0.01 * static_cast<double>(i % 7);
  return t;
}

CampaignConfig small_campaign() {
  CampaignConfig cfg;
  cfg.n = 64;
  cfg.moduli = {132120577ULL};
  return cfg;
}

/// The acceptance-criteria "moderate" fault level.
FaultSpec moderate_faults() {
  FaultSpec f;
  f.jitter_sigma = 1.0;
  f.dropout_rate = 0.05;
  f.glitch_count = 4;
  return f;
}

}  // namespace

TEST(FaultSpec, DefaultsAreInert) {
  const FaultSpec spec;
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(spec.severity(), 0.0);
  const auto trace = ramp_trace(300);
  EXPECT_EQ(FaultInjector(spec).apply(trace, 123), trace);  // bit-identical
}

TEST(FaultSpec, SeverityOrdersSweepLevels) {
  FaultSpec light;
  light.jitter_sigma = 0.25;
  light.dropout_rate = 0.01;
  FaultSpec heavy = moderate_faults();
  heavy.burst_count = 2;
  EXPECT_GT(light.severity(), 0.0);
  EXPECT_GT(heavy.severity(), light.severity());
}

TEST(FaultInjector, DeterministicPerSeedPair) {
  FaultSpec spec = moderate_faults();
  spec.burst_count = 2;
  spec.drift_sigma = 0.01;
  const FaultInjector injector(spec);
  const auto trace = ramp_trace(2000);
  EXPECT_EQ(injector.apply(trace, 7), injector.apply(trace, 7));
  EXPECT_NE(injector.apply(trace, 7), injector.apply(trace, 8));
  FaultSpec other = spec;
  other.seed ^= 1;
  EXPECT_NE(FaultInjector(other).apply(trace, 7), injector.apply(trace, 7));
}

TEST(FaultInjector, DropoutHoldsPreviousSample) {
  num::Xoshiro256StarStar rng(5);
  auto trace = ramp_trace(5000);
  const auto original = trace;
  FaultInjector::drop_samples(trace, 0.10, rng);
  ASSERT_EQ(trace.size(), original.size());
  std::size_t held = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] != original[i]) {
      EXPECT_EQ(trace[i], trace[i - 1]);  // sample-and-hold, not garbage
      ++held;
    }
  }
  // ~10% +/- a generous tolerance.
  EXPECT_GT(held, trace.size() / 20);
  EXPECT_LT(held, trace.size() / 5);
  EXPECT_THROW(FaultInjector::drop_samples(trace, 1.0, rng), std::invalid_argument);
}

TEST(FaultInjector, TimeWarpResamplesNearOriginalLength) {
  num::Xoshiro256StarStar rng(6);
  const auto trace = ramp_trace(4000);
  const auto warped = FaultInjector::time_warp(trace, 1.0, rng);
  // The period is clamped at 0.1 cycles, so its mean sits slightly above 1:
  // the warped length lands a little below the original, never far off.
  EXPECT_GT(warped.size(), trace.size() * 80 / 100);
  EXPECT_LT(warped.size(), trace.size() * 115 / 100);
  // Values stay within the original dynamic range (interpolation only).
  const auto [lo, hi] = std::minmax_element(trace.begin(), trace.end());
  for (const double v : warped) {
    EXPECT_GE(v, *lo - 1e-9);
    EXPECT_LE(v, *hi + 1e-9);
  }
  // Disabled jitter is the identity.
  EXPECT_EQ(FaultInjector::time_warp(trace, 0.0, rng), trace);
}

TEST(FaultInjector, GlitchesAndBurstNoisePerturbAmplitude) {
  num::Xoshiro256StarStar rng(7);
  auto trace = ramp_trace(1000);
  const auto original = trace;
  FaultInjector::add_glitches(trace, 4, 25.0, rng);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] != original[i]) {
      // A sample hit twice can carry 2x the amplitude (or cancel to zero,
      // in which case it does not count as changed).
      const double delta = std::abs(trace[i] - original[i]);
      EXPECT_TRUE(std::abs(delta - 25.0) < 1e-9 || std::abs(delta - 50.0) < 1e-9);
      ++changed;
    }
  }
  EXPECT_GE(changed, 1u);
  EXPECT_LE(changed, 4u);  // collisions allowed

  auto noisy = original;
  FaultInjector::add_burst_noise(noisy, 2, 50, 1.5, rng);
  std::size_t noisy_count = 0;
  for (std::size_t i = 0; i < noisy.size(); ++i) noisy_count += noisy[i] != original[i];
  // Bursts near the end of the trace truncate, so the floor is loose.
  EXPECT_GT(noisy_count, 5u);
  EXPECT_LE(noisy_count, 100u);
}

TEST(FaultInjector, ClippingClampsToRails) {
  auto trace = ramp_trace(100);
  trace[10] = 100.0;
  trace[20] = -100.0;
  FaultInjector::clip_samples(trace, 0.0, 8.0);
  for (const double v : trace) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 8.0);
  }
  EXPECT_THROW(FaultInjector::clip_samples(trace, 3.0, 3.0), std::invalid_argument);
}

TEST(FaultInjector, TriggerMisalignmentShiftsBoundedly) {
  const auto trace = ramp_trace(1000);
  bool saw_shift = false;
  for (std::uint64_t s = 0; s < 8; ++s) {
    num::Xoshiro256StarStar rng(s);
    const auto shifted = FaultInjector::misalign_trigger(trace, 40, rng);
    EXPECT_GE(shifted.size(), trace.size() - 40);
    EXPECT_LE(shifted.size(), trace.size() + 40);
    saw_shift |= shifted.size() != trace.size();
  }
  EXPECT_TRUE(saw_shift);
}

TEST(Campaign, FaultSpecThreadsThroughCapture) {
  CampaignConfig clean = small_campaign();
  CampaignConfig faulty = small_campaign();
  faulty.faults = moderate_faults();
  SamplerCampaign a(clean), b(faulty);
  const FullCapture ca = a.capture(42);
  const FullCapture cb = b.capture(42);
  EXPECT_EQ(ca.noise, cb.noise);      // same firmware run...
  EXPECT_NE(ca.trace, cb.trace);      // ...different acquisition
  // Reproducible corruption.
  SamplerCampaign b2(faulty);
  EXPECT_EQ(b2.capture(42).trace, cb.trace);
}

// ---------------------------------------------------------------------------
// Degradation-aware attack pipeline (shared trained attack, expensive).

class DegradedPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    campaign_ = new SamplerCampaign(small_campaign());
    AttackConfig cfg;
    // Robustness gates on (the seed pipeline keeps them at 0/off). The
    // margins are calibrated empirically: clean-capture sign margins stay
    // above ~0.6 while corrupted windows (jitter 1.0 / dropout 5% /
    // 4 glitches) land below ~0.27, so 0.30/0.45 separates them with a
    // safety band on both sides.
    cfg.abstain_margin = 0.30;
    cfg.low_confidence_margin = 0.45;
    cfg.value_commit_threshold = 0.05;
    // Absolute goodness-of-fit gates (chi-square-per-dimension units):
    // clean windows score ~1 with max ~1.7 (sign) / ~3.2 (value); corrupted
    // windows that fool the relative margin land far above both cutoffs.
    cfg.sign_fit_threshold = 2.5;
    cfg.value_fit_threshold = 4.0;
    attack_ = new RevealAttack(cfg);
    attack_->train(campaign_->collect_windows(/*runs=*/80, /*seed_base=*/1));
  }
  static void TearDownTestSuite() {
    delete attack_;
    delete campaign_;
    attack_ = nullptr;
    campaign_ = nullptr;
  }
  static SamplerCampaign* campaign_;
  static RevealAttack* attack_;
};

SamplerCampaign* DegradedPipeline::campaign_ = nullptr;
RevealAttack* DegradedPipeline::attack_ = nullptr;

TEST_F(DegradedPipeline, CleanCaptureStaysFullConfidence) {
  const FullCapture cap = campaign_->capture(1234);
  const RobustCaptureResult result =
      attack_->attack_capture_robust(cap.trace, 64, campaign_->config().segmentation);
  EXPECT_EQ(result.segmentation.status, sca::SegmentationStatus::kOk);
  ASSERT_EQ(result.guesses.size(), 64u);
  std::size_t ok = 0;
  for (const auto& g : result.guesses) ok += g.quality == GuessQuality::kOk;
  // Clean captures must not trip the robustness gates.
  EXPECT_GE(ok, 62u);
}

TEST_F(DegradedPipeline, ModerateFaultsCompleteWithoutThrowingOrPoisoning) {
  CampaignConfig cfg = small_campaign();
  cfg.faults = moderate_faults();
  SamplerCampaign faulty(cfg);
  std::size_t attacked = 0, wrong_perfect = 0, abstained = 0;
  for (std::uint64_t seed = 300; seed < 312; ++seed) {
    const FullCapture cap = faulty.capture(seed);
    const RobustCaptureResult result =
        attack_->attack_capture_robust(cap.trace, 64, cfg.segmentation);
    if (result.segmentation.status == sca::SegmentationStatus::kFailed) continue;
    ASSERT_EQ(result.guesses.size(), 64u);
    ++attacked;
    for (std::size_t i = 0; i < 64; ++i) {
      const auto& g = result.guesses[i];
      abstained += g.quality == GuessQuality::kAbstained;
      if (routes_as_perfect(g, HintPolicy{}) &&
          g.value != static_cast<std::int32_t>(cap.noise[i]))
        ++wrong_perfect;
    }
  }
  // Moderate faults must leave most captures attackable...
  EXPECT_GE(attacked, 6u);
  // ...and a corrupted window may cost information but never inject a
  // wrong perfect hint (the acceptance criterion of this PR).
  EXPECT_EQ(wrong_perfect, 0u);
}

TEST_F(DegradedPipeline, ShortWindowAbstainsInsteadOfThrowing) {
  const std::vector<double> stub(10, 5.0);
  const CoefficientGuess g = attack_->attack_window(stub);
  EXPECT_EQ(g.quality, GuessQuality::kAbstained);
  EXPECT_FALSE(g.sign_trusted);
  // Junk-quality windows abstain even when long enough.
  const FullCapture cap = campaign_->capture(77);
  const auto windows = windows_from_capture(cap);
  const CoefficientGuess junk = attack_->attack_window(windows[0].samples, 0.01);
  EXPECT_EQ(junk.quality, GuessQuality::kAbstained);
  EXPECT_FALSE(junk.sign_trusted);
  const CoefficientGuess suspect = attack_->attack_window(windows[0].samples, 0.4);
  EXPECT_NE(suspect.quality, GuessQuality::kOk);
}

// ---------------------------------------------------------------------------
// Hint routing.

namespace {

lwe::DbddParams seal_params() {
  lwe::DbddParams p;
  p.secret_dim = 1024;
  p.error_dim = 1024;
  p.q = 132120577.0;
  p.secret_variance = 3.2 * 3.2;
  p.error_variance = 3.2 * 3.2;
  return p;
}

CoefficientGuess make_guess(GuessQuality quality, bool sign_trusted, int sign,
                            double top_probability) {
  CoefficientGuess g;
  g.quality = quality;
  g.sign_trusted = sign_trusted;
  g.sign = sign;
  g.value = sign * 3;
  g.support = {sign * 3, sign * 4};
  g.posterior = {top_probability, 1.0 - top_probability};
  return g;
}

}  // namespace

TEST(HintRouting, QualityTiersMapToHintKinds) {
  std::vector<CoefficientGuess> guesses;
  guesses.push_back(make_guess(GuessQuality::kOk, true, 1, 1.0));          // perfect
  guesses.push_back(make_guess(GuessQuality::kOk, true, 1, 0.7));          // approximate
  guesses.push_back(make_guess(GuessQuality::kLowConfidence, true, 1, 1.0));  // inflated
  guesses.push_back(make_guess(GuessQuality::kAbstained, true, -1, 1.0));  // sign-only
  guesses.push_back(make_guess(GuessQuality::kAbstained, true, 0, 1.0));   // near-exact
  guesses.push_back(make_guess(GuessQuality::kAbstained, false, 1, 1.0));  // dropped
  // A full-confidence *zero* must not become a perfect hint: zeros carry no
  // template cross-check, so the robust policy integrates them at
  // zero_hint_variance instead (the wrong-zero failure mode under jitter).
  guesses.push_back(make_guess(GuessQuality::kOk, true, 0, 1.0));

  lwe::DbddEstimator estimator(seal_params());
  const HintPolicy policy;
  EXPECT_TRUE(routes_as_perfect(guesses[0], policy));
  EXPECT_FALSE(routes_as_perfect(guesses.back(), policy));
  const HintSummary summary = integrate_guess_hints(estimator, guesses, policy);
  EXPECT_EQ(summary.perfect, 1u);
  EXPECT_EQ(summary.approximate, 3u);
  EXPECT_EQ(summary.sign_only, 2u);
  EXPECT_EQ(summary.skipped, 1u);
  // The low-confidence guess had zero posterior variance: the inflation
  // floor must still have kept it out of the perfect bucket.
  EXPECT_GE(summary.mean_residual_variance, policy.min_inflated_variance / 2.0);
}

TEST(HintRouting, DegradedHintsCostBikzMonotonically) {
  // Same guess count, decreasing quality => non-decreasing bikz.
  const auto run = [](GuessQuality q, bool trusted) {
    lwe::DbddEstimator estimator(seal_params());
    std::vector<CoefficientGuess> guesses(
        256, make_guess(q, trusted, 1, q == GuessQuality::kOk ? 1.0 : 0.6));
    integrate_guess_hints(estimator, guesses, HintPolicy{});
    return estimator.estimate().beta;
  };
  const double perfect = run(GuessQuality::kOk, true);
  const double low = run(GuessQuality::kLowConfidence, true);
  const double sign_only = run(GuessQuality::kAbstained, true);
  const double dropped = run(GuessQuality::kAbstained, false);
  EXPECT_LT(perfect, low);
  EXPECT_LT(low, sign_only);
  EXPECT_LT(sign_only, dropped);
}

TEST(HintRouting, LegacyOverloadIgnoresQuality) {
  // The seed-pipeline entry point must keep its exact historical behaviour:
  // every guess lands in perfect-or-approximate, regardless of flags.
  std::vector<CoefficientGuess> guesses;
  guesses.push_back(make_guess(GuessQuality::kAbstained, false, 1, 1.0));
  guesses.push_back(make_guess(GuessQuality::kLowConfidence, true, -1, 0.6));
  lwe::DbddEstimator estimator(seal_params());
  const HintSummary summary = integrate_guess_hints(estimator, guesses, 1e-6);
  EXPECT_EQ(summary.perfect + summary.approximate, 2u);
  EXPECT_EQ(summary.sign_only, 0u);
  EXPECT_EQ(summary.skipped, 0u);
}

TEST(HintRouting, RecoveryReportCollatesStages) {
  RobustCaptureResult result;
  result.segmentation.status = sca::SegmentationStatus::kRecovered;
  result.segmentation.attempts = 12;
  result.segmentation.burst_consistency = 0.91;
  result.segmentation.segments.resize(4);
  result.guesses.push_back(make_guess(GuessQuality::kOk, true, 1, 1.0));
  result.guesses.push_back(make_guess(GuessQuality::kLowConfidence, true, 1, 0.6));
  result.guesses.push_back(make_guess(GuessQuality::kAbstained, true, 0, 1.0));
  result.guesses.push_back(make_guess(GuessQuality::kAbstained, false, 1, 1.0));

  lwe::DbddEstimator estimator(seal_params());
  const HintSummary hints = integrate_guess_hints(estimator, result.guesses, HintPolicy{});
  const sca::RecoveryReport report =
      summarize_recovery(result, 4, hints, estimator.estimate());
  EXPECT_EQ(report.expected_windows, 4u);
  EXPECT_EQ(report.recovered_windows, 4u);
  EXPECT_EQ(report.ok_guesses, 1u);
  EXPECT_EQ(report.low_confidence_guesses, 1u);
  EXPECT_EQ(report.abstained_guesses, 2u);
  EXPECT_EQ(report.perfect_hints + report.approximate_hints, 2u);
  EXPECT_EQ(report.sign_only_hints, 1u);
  EXPECT_EQ(report.dropped_hints, 1u);
  EXPECT_GT(report.bikz, 0.0);
  const std::string text = report.to_string();
  EXPECT_NE(text.find("recovered"), std::string::npos);
  EXPECT_NE(text.find("sign-only"), std::string::npos);
}
