// Differential tests of the hot-path optimizations against their reference
// implementations — the contract of this codebase's perf work is that every
// fast path is *byte-identical* to the code it replaced:
//
//   * predecoded + fused victim execution (Machine::run_with) vs the
//     decode-per-step virtually-dispatched loop (Machine::run_reference),
//     fuzzed over randomized RV32IM programs including self-modifying
//     stores into the code region;
//   * the block-translated execution tier (DESIGN.md §6f) vs both lower
//     tiers: random and sampler-shaped programs, stores that split or
//     invalidate translated blocks (including from inside the executing
//     block), branches into block middles, invalid encodings at block
//     tails, instruction limits expiring mid-block, and tier toggling
//     after load_program;
//   * shared-work template scoring (one Sigma^{-1} x matvec per
//     observation) vs an in-test mirror of the documented kernel loop
//     order (exact double equality) and vs the pre-factorization
//     per-class loops (tolerance);
//   * the allocation-free capture pipeline (capture_into with a persistent
//     recorder) vs fresh-object capture().

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "core/acquisition.hpp"
#include "numeric/distributions.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"
#include "riscv/assembler.hpp"
#include "riscv/machine.hpp"
#include "sca/template_attack.hpp"

using namespace reveal;

namespace {

constexpr std::size_t kMemBytes = 64 * 1024;
constexpr std::uint32_t kDataBase = 0x2000;
constexpr std::uint64_t kInstrLimit = 5000;

// --------------------------------------------------------------------------
// Randomized RV32IM program generation
// --------------------------------------------------------------------------

/// addi x7, x0, 2 — the word the self-modifying programs store over a
/// patchable addi x7, x0, 1 slot.
constexpr std::uint32_t kPatchWord = 0x00200393u;

std::vector<std::uint32_t> random_program(num::Xoshiro256StarStar& rng, bool self_modify) {
  riscv::Assembler as(0);
  using riscv::Reg;
  const auto reg = [&]() { return static_cast<Reg>(5 + rng() % 11); };  // x5..x15

  as.li(Reg::x5, static_cast<std::int32_t>(kDataBase));
  for (int r = 6; r <= 15; ++r) {
    as.li(static_cast<Reg>(r), static_cast<std::int32_t>(rng() % 4096) - 2048);
  }

  if (self_modify) {
    // Store either a valid patch instruction or arbitrary register content
    // (usually an invalid encoding — both executions must then trap
    // identically) over the "patch" slot below.
    if (rng() % 2 == 0) {
      as.li(Reg::x16, static_cast<std::int32_t>(kPatchWord));
    } else {
      as.mv(Reg::x16, reg());
    }
    as.la(Reg::x17, "patch");
    as.sw(Reg::x16, 0, Reg::x17);
  }

  // Forward-only control flow keeps every program terminating; the
  // instruction limit would catch a runaway anyway (and both executions
  // must agree on kInstrLimit too).
  int next_label = 0;
  std::vector<std::pair<std::string, int>> pending;  // label -> instrs until placement
  const std::size_t body = 40 + rng() % 60;
  for (std::size_t i = 0; i < body; ++i) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (--it->second <= 0) {
        as.label(it->first);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    switch (rng() % 12) {
      case 0:
      case 1:
      case 2: {
        const Reg rd = reg(), rs1 = reg(), rs2 = reg();
        switch (rng() % 10) {
          case 0: as.add(rd, rs1, rs2); break;
          case 1: as.sub(rd, rs1, rs2); break;
          case 2: as.xor_(rd, rs1, rs2); break;
          case 3: as.and_(rd, rs1, rs2); break;
          case 4: as.or_(rd, rs1, rs2); break;
          case 5: as.sll(rd, rs1, rs2); break;
          case 6: as.srl(rd, rs1, rs2); break;
          case 7: as.sra(rd, rs1, rs2); break;
          case 8: as.slt(rd, rs1, rs2); break;
          default: as.sltu(rd, rs1, rs2); break;
        }
        break;
      }
      case 3:
      case 4: {
        const Reg rd = reg(), rs1 = reg(), rs2 = reg();
        switch (rng() % 8) {
          case 0: as.mul(rd, rs1, rs2); break;
          case 1: as.mulh(rd, rs1, rs2); break;
          case 2: as.mulhsu(rd, rs1, rs2); break;
          case 3: as.mulhu(rd, rs1, rs2); break;
          case 4: as.div(rd, rs1, rs2); break;  // div-by-zero is defined, no trap
          case 5: as.divu(rd, rs1, rs2); break;
          case 6: as.rem(rd, rs1, rs2); break;
          default: as.remu(rd, rs1, rs2); break;
        }
        break;
      }
      case 5:
      case 6: {
        const Reg rd = reg(), rs1 = reg();
        const auto imm = static_cast<std::int32_t>(rng() % 4096) - 2048;
        switch (rng() % 6) {
          case 0: as.addi(rd, rs1, imm); break;
          case 1: as.xori(rd, rs1, imm); break;
          case 2: as.ori(rd, rs1, imm); break;
          case 3: as.andi(rd, rs1, imm); break;
          case 4: as.slli(rd, rs1, static_cast<std::uint32_t>(rng() % 32)); break;
          default: as.srai(rd, rs1, static_cast<std::uint32_t>(rng() % 32)); break;
        }
        break;
      }
      case 7: {
        const auto offset = static_cast<std::int32_t>((rng() % 256) * 4);
        switch (rng() % 3) {
          case 0: as.lw(reg(), offset, Reg::x5); break;
          case 1: as.lbu(reg(), offset + static_cast<std::int32_t>(rng() % 4), Reg::x5); break;
          default: as.lhu(reg(), offset, Reg::x5); break;
        }
        break;
      }
      case 8: {
        const auto offset = static_cast<std::int32_t>((rng() % 256) * 4);
        switch (rng() % 3) {
          case 0: as.sw(reg(), offset, Reg::x5); break;
          case 1: as.sb(reg(), offset + static_cast<std::int32_t>(rng() % 4), Reg::x5); break;
          default: as.sh(reg(), offset, Reg::x5); break;
        }
        break;
      }
      case 9:
      case 10: {
        const std::string name = "L" + std::to_string(next_label++);
        const int skip = 1 + static_cast<int>(rng() % 4);
        switch (rng() % 4) {
          case 0: as.beq(reg(), reg(), name); break;
          case 1: as.bne(reg(), reg(), name); break;
          case 2: as.blt(reg(), reg(), name); break;
          default: as.bgeu(reg(), reg(), name); break;
        }
        pending.emplace_back(name, skip);
        break;
      }
      default: {
        const std::string name = "J" + std::to_string(next_label++);
        as.jal(Reg::x1, name);
        pending.emplace_back(name, 1 + static_cast<int>(rng() % 3));
        break;
      }
    }
  }
  for (auto& [name, skip] : pending) as.label(name);
  if (self_modify) {
    as.label("patch");
    as.addi(Reg::x7, riscv::zero, 1);
  }
  as.ebreak();
  return as.assemble();
}

// --------------------------------------------------------------------------
// Execution comparison
// --------------------------------------------------------------------------

struct Collector final : riscv::ExecutionObserver {
  std::vector<riscv::InstrEvent> events;
  void on_instruction(const riscv::InstrEvent& e) override { events.push_back(e); }
};

struct Outcome {
  riscv::Machine::StopReason reason = riscv::Machine::StopReason::kHalt;
  std::vector<riscv::InstrEvent> events;
  std::uint64_t cycles = 0;
  std::uint64_t retired = 0;
  std::string trap;
  std::array<std::uint32_t, 32> regs{};
  std::vector<std::uint32_t> memory;
};

Outcome finish(riscv::Machine& m, riscv::Machine::StopReason reason, Collector&& col) {
  Outcome out;
  out.reason = reason;
  out.events = std::move(col.events);
  out.cycles = m.cycle_count();
  out.retired = m.retired_count();
  out.trap = m.trap_message();
  for (int r = 0; r < 32; ++r) out.regs[static_cast<std::size_t>(r)] = m.reg(static_cast<riscv::Reg>(r));
  out.memory.resize(kMemBytes / 4);
  for (std::uint32_t w = 0; w < kMemBytes / 4; ++w) out.memory[w] = m.load_word(w * 4);
  return out;
}

/// Fast path: predecode on, statically-bound observer (run_with).
Outcome run_fast(const std::vector<std::uint32_t>& words) {
  riscv::Machine m(kMemBytes);
  m.reset();
  m.load_program(words, 0);
  Collector col;
  const auto reason = m.run_with(kInstrLimit, col);
  return finish(m, reason, std::move(col));
}

/// Virtual-dispatch route of the public API (run with an observer pointer).
Outcome run_virtual(const std::vector<std::uint32_t>& words) {
  riscv::Machine m(kMemBytes);
  m.reset();
  m.load_program(words, 0);
  Collector col;
  const auto reason = m.run(kInstrLimit, &col);
  return finish(m, reason, std::move(col));
}

/// Reference: predecode disabled, decode-per-step loop.
Outcome run_ref(const std::vector<std::uint32_t>& words) {
  riscv::Machine m(kMemBytes);
  m.set_predecode(false);
  m.reset();
  m.load_program(words, 0);
  Collector col;
  const auto reason = m.run_reference(kInstrLimit, &col);
  return finish(m, reason, std::move(col));
}

void expect_events_equal(const riscv::InstrEvent& a, const riscv::InstrEvent& b,
                         std::size_t index) {
  SCOPED_TRACE("event " + std::to_string(index));
  EXPECT_EQ(a.pc, b.pc);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.klass, b.klass);
  EXPECT_EQ(a.rd, b.rd);
  EXPECT_EQ(a.rs1_val, b.rs1_val);
  EXPECT_EQ(a.rs2_val, b.rs2_val);
  EXPECT_EQ(a.rd_old, b.rd_old);
  EXPECT_EQ(a.rd_new, b.rd_new);
  EXPECT_EQ(a.rd_written, b.rd_written);
  EXPECT_EQ(a.branch_taken, b.branch_taken);
  EXPECT_EQ(a.mem_addr, b.mem_addr);
  EXPECT_EQ(a.mem_data, b.mem_data);
  EXPECT_EQ(a.is_mem_read, b.is_mem_read);
  EXPECT_EQ(a.is_mem_write, b.is_mem_write);
  EXPECT_EQ(a.cycles, b.cycles);
}

void expect_outcomes_equal(const Outcome& fast, const Outcome& ref) {
  EXPECT_EQ(fast.reason, ref.reason);
  EXPECT_EQ(fast.cycles, ref.cycles);
  EXPECT_EQ(fast.retired, ref.retired);
  EXPECT_EQ(fast.trap, ref.trap);
  EXPECT_EQ(fast.regs, ref.regs);
  EXPECT_EQ(fast.memory, ref.memory);
  ASSERT_EQ(fast.events.size(), ref.events.size());
  for (std::size_t i = 0; i < fast.events.size(); ++i) {
    expect_events_equal(fast.events[i], ref.events[i], i);
    if (::testing::Test::HasFailure()) break;  // one mismatch is enough detail
  }
}

TEST(PredecodeFuzz, RandomProgramsMatchReferenceExecution) {
  num::Xoshiro256StarStar rng(0xFA57'F7A5ULL);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = random_program(rng, /*self_modify=*/false);
    expect_outcomes_equal(run_fast(words), run_ref(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(PredecodeFuzz, SelfModifyingProgramsMatchReferenceExecution) {
  num::Xoshiro256StarStar rng(0x5E1F'0D1FULL);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = random_program(rng, /*self_modify=*/true);
    expect_outcomes_equal(run_fast(words), run_ref(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(PredecodeFuzz, VirtualDispatchRouteMatchesFusedRoute) {
  num::Xoshiro256StarStar rng(0x0D15'A7C4ULL);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = random_program(rng, trial % 2 == 1);
    expect_outcomes_equal(run_virtual(words), run_ref(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(Predecode, StoreIntoCodeRegionInvalidatesCachedInstruction) {
  // The store executes before the patched slot is ever fetched: the fast
  // path must re-decode the overwritten word, not replay the stale cache
  // entry assembled at load time.
  riscv::Assembler as(0);
  using riscv::Reg;
  as.li(Reg::x16, static_cast<std::int32_t>(kPatchWord));  // addi x7, x0, 2
  as.la(Reg::x17, "patch");
  as.sw(Reg::x16, 0, Reg::x17);
  as.label("patch");
  as.addi(Reg::x7, riscv::zero, 1);
  as.ebreak();
  const auto words = as.assemble();

  const Outcome fast = run_fast(words);
  const Outcome ref = run_ref(words);
  EXPECT_EQ(fast.regs[7], 2u);  // the patched instruction executed
  expect_outcomes_equal(fast, ref);
}

// --------------------------------------------------------------------------
// Block-translated execution tier (DESIGN.md §6f)
// --------------------------------------------------------------------------

/// Runs `words` with an explicit tier configuration and instruction limit.
Outcome run_tiered(const std::vector<std::uint32_t>& words, bool predecode, bool block,
                   std::uint64_t limit = kInstrLimit) {
  riscv::Machine m(kMemBytes);
  m.set_predecode(predecode);
  m.set_block_tier(block);
  m.reset();
  m.load_program(words, 0);
  Collector col;
  const auto reason = m.run_with(limit, col);
  return finish(m, reason, std::move(col));
}

Outcome run_block(const std::vector<std::uint32_t>& words,
                  std::uint64_t limit = kInstrLimit) {
  return run_tiered(words, /*predecode=*/true, /*block=*/true, limit);
}

Outcome run_predecode_only(const std::vector<std::uint32_t>& words,
                           std::uint64_t limit = kInstrLimit) {
  return run_tiered(words, /*predecode=*/true, /*block=*/false, limit);
}

Outcome run_reference_limit(const std::vector<std::uint32_t>& words,
                            std::uint64_t limit = kInstrLimit) {
  riscv::Machine m(kMemBytes);
  m.set_predecode(false);
  m.reset();
  m.load_program(words, 0);
  Collector col;
  const auto reason = m.run_reference(limit, &col);
  return finish(m, reason, std::move(col));
}

/// State-only run through the public nullptr-observer route: this is the
/// capture hot path, where the block tier's NullExecutionObserver lean legs
/// (hoisted registers, inlined accept path) are statically selected.
Outcome run_lean(const std::vector<std::uint32_t>& words, bool predecode, bool block,
                 std::uint64_t limit = kInstrLimit) {
  riscv::Machine m(kMemBytes);
  m.set_predecode(predecode);
  m.set_block_tier(block);
  m.reset();
  m.load_program(words, 0);
  const auto reason = m.run(limit, nullptr);
  return finish(m, reason, Collector{});
}

Outcome run_lean_reference(const std::vector<std::uint32_t>& words,
                           std::uint64_t limit = kInstrLimit) {
  riscv::Machine m(kMemBytes);
  m.set_predecode(false);
  m.reset();
  m.load_program(words, 0);
  const auto reason = m.run_reference(limit, nullptr);
  return finish(m, reason, Collector{});
}

/// A rejection-sampling loop with the exact op shapes the translator fuses
/// (xorshift-mask superop followed by the accumulate/loop block), with the
/// register roles drawn from `rng`. Distinct roles reproduce the canonical
/// firmware dataflow (specialized handlers, lean-leg accept-path inlining);
/// aliased roles must fall back to the generic handlers with identical
/// results. Aliasing can make the loop diverge — the instruction limit then
/// stops both executions at the same instruction.
std::vector<std::uint32_t> sampler_like_program(num::Xoshiro256StarStar& rng,
                                                bool distinct_roles) {
  riscv::Assembler as(0);
  using riscv::Reg;
  std::array<Reg, 8> roles{};
  if (distinct_roles) {
    for (std::size_t i = 0; i < roles.size(); ++i) roles[i] = static_cast<Reg>(5 + i);
    for (std::size_t i = roles.size(); i > 1; --i) {
      std::swap(roles[i - 1], roles[rng() % i]);
    }
  } else {
    for (auto& r : roles) r = static_cast<Reg>(5 + rng() % 11);
  }
  const Reg s = roles[0], t = roles[1], m = roles[2], x = roles[3], bound = roles[4],
            acc = roles[5], ctr = roles[6], n = roles[7];
  as.li(s, static_cast<std::int32_t>(rng() & 0x7FFFFFFF) | 1);
  as.li(bound, 0x4000);  // mask is 0xFFFF: ~1/4 accept rate
  as.li(acc, 0);
  as.li(ctr, 0);
  as.li(n, 1 + static_cast<std::int32_t>(rng() % 4));
  as.label("sample");  // both back-edges target the superop head: self-loops
  as.slli(t, s, 13);
  as.xor_(s, s, t);
  as.srli(t, s, 17);
  as.xor_(s, s, t);
  as.slli(t, s, 5);
  as.xor_(s, s, t);
  as.lui(m, 0x10);
  as.addi(m, m, -1);
  as.and_(x, s, m);
  as.bgeu(x, bound, "sample");
  as.add(acc, acc, x);
  as.addi(ctr, ctr, 1);
  as.bne(ctr, n, "sample");
  as.ebreak();
  return as.assemble();
}

/// Emits every remaining fused shape (sign-fold, slli-add-blt, mask-bgeu,
/// plain xorshift, acc-bne) with registers drawn freely from x5..x15 —
/// aliasing included — each terminated by a short forward branch.
std::vector<std::uint32_t> idiom_shape_program(num::Xoshiro256StarStar& rng) {
  riscv::Assembler as(0);
  using riscv::Reg;
  const auto reg = [&]() { return static_cast<Reg>(5 + rng() % 11); };
  const auto imm12 = [&]() { return static_cast<std::int32_t>(rng() % 4096) - 2048; };
  const auto sh = [&]() { return static_cast<std::uint32_t>(rng() % 32); };
  for (int r = 5; r <= 15; ++r) {
    as.li(static_cast<Reg>(r), static_cast<std::int32_t>(rng() % 10007) - 5003);
  }
  int next_label = 0;
  const auto fwd = [&]() { return "F" + std::to_string(next_label++); };
  for (int group = 0; group < 8; ++group) {
    std::string target;
    switch (rng() % 5) {
      case 0: {  // kFuseSignFold
        as.lui(reg(), static_cast<std::uint32_t>(rng() % (1u << 20)));
        as.addi(reg(), reg(), imm12());
        as.sub(reg(), reg(), reg());
        as.mul(reg(), reg(), reg());
        as.lui(reg(), static_cast<std::uint32_t>(rng() % (1u << 20)));
        as.add(reg(), reg(), reg());
        as.srai(reg(), reg(), sh());
        as.srai(reg(), reg(), sh());
        as.xor_(reg(), reg(), reg());
        as.sub(reg(), reg(), reg());
        target = fwd();
        as.blt(reg(), reg(), target);
        break;
      }
      case 1: {  // kFuseSlliAddBlt
        as.slli(reg(), reg(), sh());
        as.add(reg(), reg(), reg());
        target = fwd();
        as.blt(reg(), reg(), target);
        break;
      }
      case 2: {  // kFuseMaskBgeu
        as.lui(reg(), static_cast<std::uint32_t>(rng() % (1u << 20)));
        as.addi(reg(), reg(), imm12());
        as.and_(reg(), reg(), reg());
        target = fwd();
        as.bgeu(reg(), reg(), target);
        break;
      }
      case 3: {  // kFuseXorshift (no branch in the shape)
        as.slli(reg(), reg(), sh());
        as.xor_(reg(), reg(), reg());
        as.srli(reg(), reg(), sh());
        as.xor_(reg(), reg(), reg());
        as.slli(reg(), reg(), sh());
        as.xor_(reg(), reg(), reg());
        target = fwd();
        as.beq(reg(), reg(), target);
        break;
      }
      default: {  // kFuseAccBne
        as.add(reg(), reg(), reg());
        as.addi(reg(), reg(), imm12());
        target = fwd();
        as.bne(reg(), reg(), target);
        break;
      }
    }
    as.addi(reg(), reg(), imm12());  // skippable filler
    as.label(target);
  }
  as.ebreak();
  return as.assemble();
}

TEST(BlockTierFuzz, RandomProgramsMatchBothLowerTiers) {
  num::Xoshiro256StarStar rng(0xB10C'F7A5ULL);
  for (int trial = 0; trial < 30; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = random_program(rng, /*self_modify=*/false);
    const Outcome ref = run_reference_limit(words);
    expect_outcomes_equal(run_block(words), ref);
    expect_outcomes_equal(run_predecode_only(words), ref);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTierFuzz, SelfModifyingProgramsMatchReferenceExecution) {
  num::Xoshiro256StarStar rng(0xB10C'0D1FULL);
  for (int trial = 0; trial < 25; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = random_program(rng, /*self_modify=*/true);
    expect_outcomes_equal(run_block(words), run_reference_limit(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTierFuzz, FusedIdiomShapesWithAliasedRegistersMatchReference) {
  num::Xoshiro256StarStar rng(0x1D10'3A17ULL);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = idiom_shape_program(rng);
    expect_outcomes_equal(run_block(words), run_reference_limit(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTierFuzz, SamplerShapedLoopsMatchReferenceWithObserver) {
  num::Xoshiro256StarStar rng(0x5A3B'1E57ULL);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = sampler_like_program(rng, /*distinct_roles=*/trial % 2 == 0);
    expect_outcomes_equal(run_block(words), run_reference_limit(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTierFuzz, LeanNullObserverPathMatchesReference) {
  // The nullptr-observer route statically selects the lean legs (hoisted
  // pool fields, self-loop shortcut, inlined accept path); the observer
  // tests above never reach them.
  num::Xoshiro256StarStar rng(0x0B5E'55EDULL);
  for (int trial = 0; trial < 20; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = trial < 12 ? sampler_like_program(rng, trial % 2 == 0)
                                  : random_program(rng, trial % 2 == 1);
    expect_outcomes_equal(run_lean(words, true, true), run_lean_reference(words));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTierFuzz, InstructionLimitExpiringMidBlockMatchesReference) {
  // Sweep the budget through every point of a superop-heavy program: limits
  // landing inside a translated block (including inside a fused idiom) must
  // stop after exactly `limit` retired instructions via the precise tail.
  num::Xoshiro256StarStar rng(0x11D1'7B0DULL);
  const auto words = sampler_like_program(rng, /*distinct_roles=*/true);
  const Outcome full = run_reference_limit(words);
  const std::uint64_t total = full.retired;
  ASSERT_GT(total, 20u);
  for (std::uint64_t limit = 1; limit <= std::min<std::uint64_t>(total + 2, 80); ++limit) {
    SCOPED_TRACE("limit " + std::to_string(limit));
    const Outcome ref = run_reference_limit(words, limit);
    expect_outcomes_equal(run_block(words, limit), ref);
    expect_outcomes_equal(run_lean(words, true, true, limit), run_lean_reference(words, limit));
    if (limit < total) {
      EXPECT_EQ(ref.reason, riscv::Machine::StopReason::kInstrLimit);
      EXPECT_EQ(ref.retired, limit);
    }
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(BlockTier, StoreAheadInsideExecutingBlockInvalidatesBeforeFetch) {
  // The store and its target live in the SAME straight-line block: the
  // store must invalidate the translation and bail to the dispatcher so the
  // patched word — not the stale block instruction — executes next.
  riscv::Assembler as(0);
  using riscv::Reg;
  as.li(Reg::x16, static_cast<std::int32_t>(kPatchWord));  // addi x7, x0, 2
  as.la(Reg::x17, "patch");
  as.sw(Reg::x16, 0, Reg::x17);
  as.addi(Reg::x6, riscv::zero, 5);  // still the same block
  as.label("patch");
  as.addi(Reg::x7, riscv::zero, 1);
  as.ebreak();
  const auto words = as.assemble();

  const Outcome block = run_block(words);
  EXPECT_EQ(block.regs[7], 2u);  // the patched instruction executed
  expect_outcomes_equal(block, run_reference_limit(words));
  expect_outcomes_equal(run_lean(words, true, true), run_lean_reference(words));
}

TEST(BlockTier, StoreBehindInsideLoopBlockIsObservedOnReExecution) {
  // The loop body patches an instruction BEHIND the store (already executed
  // this iteration); the back-edge re-enters the block, which must have
  // been invalidated — iteration 1 runs the original word, iteration 2 the
  // patched one (x9 accumulates 1 + 2).
  riscv::Assembler as(0);
  using riscv::Reg;
  as.li(Reg::x16, static_cast<std::int32_t>(kPatchWord));  // addi x7, x0, 2
  as.la(Reg::x17, "patch");
  as.li(Reg::x14, 0);
  as.li(Reg::x13, 2);
  as.label("loop");
  as.label("patch");
  as.addi(Reg::x7, riscv::zero, 1);
  as.add(Reg::x9, Reg::x9, Reg::x7);
  as.addi(Reg::x14, Reg::x14, 1);
  as.sw(Reg::x16, 0, Reg::x17);
  as.bne(Reg::x14, Reg::x13, "loop");
  as.ebreak();
  const auto words = as.assemble();

  const Outcome block = run_block(words);
  EXPECT_EQ(block.regs[9], 3u);
  expect_outcomes_equal(block, run_reference_limit(words));
  expect_outcomes_equal(run_lean(words, true, true), run_lean_reference(words));
}

std::vector<std::uint32_t> branch_into_middle_program(bool middle_first) {
  riscv::Assembler as(0);
  using riscv::Reg;
  // Iterations enter the same straight-line run alternately at its head and
  // at its middle; whichever entry translates first, the other must not
  // execute a misaligned or stale view of the range.
  as.li(Reg::x14, 0);
  as.li(Reg::x13, middle_first ? 1 : 2);
  as.li(Reg::x12, 3);
  as.label("loop");
  as.addi(Reg::x14, Reg::x14, 1);
  as.beq(Reg::x14, Reg::x13, "mid");
  as.addi(Reg::x6, Reg::x6, 1);
  as.addi(Reg::x7, Reg::x7, 3);
  as.label("mid");
  as.addi(Reg::x8, Reg::x8, 5);
  as.addi(Reg::x9, Reg::x9, 7);
  as.blt(Reg::x14, Reg::x12, "loop");
  as.ebreak();
  return as.assemble();
}

TEST(BlockTier, BranchIntoBlockMiddleMatchesReference) {
  for (const bool middle_first : {false, true}) {
    SCOPED_TRACE(middle_first ? "middle entry first" : "head entry first");
    const auto words = branch_into_middle_program(middle_first);
    expect_outcomes_equal(run_block(words), run_reference_limit(words));
    expect_outcomes_equal(run_lean(words, true, true), run_lean_reference(words));
  }
}

TEST(BlockTier, InvalidEncodingAtBlockTailTrapsIdentically) {
  for (const std::uint32_t bad : {0xFFFF'FFFFu, 0x0000'0000u}) {
    SCOPED_TRACE("invalid word " + std::to_string(bad));
    riscv::Assembler as(0);
    using riscv::Reg;
    as.addi(Reg::x6, riscv::zero, 1);
    as.addi(Reg::x7, riscv::zero, 2);
    auto words = as.assemble();
    words.push_back(bad);  // straight line runs off into an invalid encoding
    const Outcome block = run_block(words);
    EXPECT_EQ(block.reason, riscv::Machine::StopReason::kTrap);
    expect_outcomes_equal(block, run_reference_limit(words));
    expect_outcomes_equal(run_lean(words, true, true), run_lean_reference(words));
  }
}

TEST(TierToggle, EnablingPredecodeAfterLoadSeesPatchedMemory) {
  // set_predecode(true) after load_program: the cache was populated (or
  // left cold) under the old mode, and memory has changed since — the
  // re-enabled tiers must decode current bytes, never the load-time ones.
  riscv::Assembler as(0);
  using riscv::Reg;
  as.addi(Reg::x7, riscv::zero, 1);
  as.ebreak();
  const auto words = as.assemble();

  riscv::Machine m(kMemBytes);
  m.set_predecode(false);
  m.set_block_tier(false);
  m.reset();
  m.load_program(words, 0);
  m.store_word(0, kPatchWord);  // patch while both caches are disabled
  m.set_predecode(true);
  m.set_block_tier(true);
  const auto reason = m.run(kInstrLimit, nullptr);
  EXPECT_EQ(reason, riscv::Machine::StopReason::kHalt);
  EXPECT_EQ(m.reg(riscv::Reg::x7), 2u);
}

TEST(TierToggle, ReenablingWarmPredecodeSeesStoredPatch) {
  // Warm the caches with a full run, patch the code via the public store
  // API, then re-enable the (already enabled) tiers: the store invalidation
  // must be honoured — set_predecode(true) on an enabled cache is a no-op,
  // not a mask of the patch.
  riscv::Assembler as(0);
  using riscv::Reg;
  as.addi(Reg::x7, riscv::zero, 1);
  as.ebreak();
  const auto words = as.assemble();

  riscv::Machine m(kMemBytes);
  m.reset();
  m.load_program(words, 0);
  ASSERT_EQ(m.run(kInstrLimit, nullptr), riscv::Machine::StopReason::kHalt);
  ASSERT_EQ(m.reg(riscv::Reg::x7), 1u);

  m.store_word(0, kPatchWord);
  m.set_predecode(true);
  m.set_block_tier(true);
  m.reset();
  m.load_program(words, 0);  // unchanged-reload path must NOT apply here:
  // the program words differ from patched memory, so this is a fresh load.
  ASSERT_EQ(m.run(kInstrLimit, nullptr), riscv::Machine::StopReason::kHalt);
  EXPECT_EQ(m.reg(riscv::Reg::x7), 1u);  // reload restored the original word

  m.store_word(0, kPatchWord);
  m.set_predecode(true);  // no rebuild: invalidation alone must carry it
  const auto r = (m.reset(), m.load_program({m.load_word(0), words[1]}, 0),
                  m.run(kInstrLimit, nullptr));
  ASSERT_EQ(r, riscv::Machine::StopReason::kHalt);
  EXPECT_EQ(m.reg(riscv::Reg::x7), 2u);  // patched word executes
}

TEST(TierToggle, SwitchingTiersMidExecutionMatchesReference) {
  // Run the first third under the block tier, the second under predecode
  // only, and the rest under decode-per-step — the composite must be
  // indistinguishable from a pure reference run.
  num::Xoshiro256StarStar rng(0x706'6135ULL);
  for (int trial = 0; trial < 10; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const auto words = trial % 2 == 0 ? sampler_like_program(rng, true)
                                      : random_program(rng, false);
    const Outcome ref = run_reference_limit(words);
    if (ref.retired < 9) continue;

    riscv::Machine m(kMemBytes);
    m.reset();
    m.load_program(words, 0);
    Collector col;
    const std::uint64_t third = ref.retired / 3;
    auto reason = m.run_with(third, col);
    ASSERT_EQ(reason, riscv::Machine::StopReason::kInstrLimit);
    m.set_block_tier(false);
    reason = m.run_with(third, col);
    ASSERT_EQ(reason, riscv::Machine::StopReason::kInstrLimit);
    m.set_predecode(false);
    reason = m.run_with(kInstrLimit, col);
    expect_outcomes_equal(finish(m, reason, std::move(col)), ref);
    if (::testing::Test::HasFailure()) break;
  }
}

// --------------------------------------------------------------------------
// Template scoring
// --------------------------------------------------------------------------

struct ScoringFixture {
  std::vector<sca::TemplateSet::ClassTemplate> classes;
  num::Matrix cov;
  sca::TemplateSet set;
};

ScoringFixture make_scoring_fixture(std::size_t num_classes, std::size_t dim,
                                    std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  num::Matrix a(dim, dim);
  for (std::size_t i = 0; i < dim; ++i)
    for (std::size_t j = 0; j < dim; ++j) a(i, j) = rng.gaussian(0.0, 1.0);
  num::Matrix cov(dim, dim);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j < dim; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < dim; ++k) acc += a(k, i) * a(k, j);
      cov(i, j) = acc / static_cast<double>(dim);
    }
  }
  num::add_ridge(cov, 0.05);
  std::vector<sca::TemplateSet::ClassTemplate> classes(num_classes);
  for (std::size_t c = 0; c < num_classes; ++c) {
    classes[c].label = static_cast<std::int32_t>(c) - static_cast<std::int32_t>(num_classes / 2);
    classes[c].count = 8;
    classes[c].mean.resize(dim);
    for (double& m : classes[c].mean) m = rng.gaussian(0.0, 2.0);
  }
  auto classes_copy = classes;
  auto cov_copy = cov;
  return {std::move(classes), std::move(cov),
          sca::TemplateSet(std::move(classes_copy), std::move(cov_copy))};
}

std::vector<double> random_observation(num::Xoshiro256StarStar& rng, std::size_t dim) {
  std::vector<double> x(dim);
  for (double& v : x) v = rng.gaussian(0.0, 2.0);
  return x;
}

TEST(TemplateScoringFastPath, MatchesMirroredKernelExactly) {
  const auto fx = make_scoring_fixture(9, 6, 0xC0FFEEULL);
  const std::size_t dim = 6;
  // Recompute exactly what the constructor computes: invert_spd is
  // deterministic, so feeding it the same covariance reproduces
  // inv_covariance_ bit-for-bit; the loops below mirror the kernel's
  // documented evaluation order (i-major matvec, left-to-right dots).
  const num::Matrix inv = num::invert_spd(fx.cov);
  const double log_det = num::log_det_spd(fx.cov);
  std::vector<std::vector<double>> u(fx.classes.size(), std::vector<double>(dim));
  std::vector<double> t(fx.classes.size());
  for (std::size_t c = 0; c < fx.classes.size(); ++c) {
    for (std::size_t i = 0; i < dim; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < dim; ++j) row += inv(i, j) * fx.classes[c].mean[j];
      u[c][i] = row;
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < dim; ++i) acc += fx.classes[c].mean[i] * u[c][i];
    t[c] = acc;
  }

  num::Xoshiro256StarStar rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::vector<double> x = random_observation(rng, dim);
    std::vector<double> y(dim);
    double xy = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < dim; ++j) row += inv(i, j) * x[j];
      y[i] = row;
      xy += x[i] * row;
    }
    const std::vector<double> maha = fx.set.mahalanobis(x);
    const std::vector<double> scores = fx.set.log_scores(x);
    ASSERT_EQ(maha.size(), fx.classes.size());
    for (std::size_t c = 0; c < fx.classes.size(); ++c) {
      double ux = 0.0;
      for (std::size_t i = 0; i < dim; ++i) ux += u[c][i] * x[i];
      const double expected = xy - 2.0 * ux + t[c];
      EXPECT_EQ(maha[c], expected) << "class " << c;  // exact, not approximate
      EXPECT_EQ(scores[c], -0.5 * expected - 0.5 * log_det) << "class " << c;
    }
  }
}

TEST(TemplateScoringFastPath, AgreesWithReferenceLoopsWithinTolerance) {
  const auto fx = make_scoring_fixture(11, 8, 0xBEEFULL);
  num::Xoshiro256StarStar rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const std::vector<double> x = random_observation(rng, 8);
    const std::vector<double> fast = fx.set.mahalanobis(x);
    const std::vector<double> ref = fx.set.mahalanobis_reference(x);
    const std::vector<double> fast_scores = fx.set.log_scores(x);
    const std::vector<double> ref_scores = fx.set.log_scores_reference(x);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t c = 0; c < fast.size(); ++c) {
      const double scale = std::max(1.0, std::fabs(ref[c]));
      EXPECT_NEAR(fast[c], ref[c], 1e-9 * scale) << "class " << c;
      EXPECT_NEAR(fast_scores[c], ref_scores[c], 1e-9 * std::max(1.0, std::fabs(ref_scores[c])))
          << "class " << c;
    }
  }
}

TEST(TemplateScoringFastPath, ClassifyIsArgmaxOfPosteriorAndLogScores) {
  const auto fx = make_scoring_fixture(7, 5, 0xABCDULL);
  num::Xoshiro256StarStar rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::vector<double> x = random_observation(rng, 5);
    const std::vector<double> scores = fx.set.log_scores(x);
    const std::vector<double> post = fx.set.posterior(x);
    std::size_t best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[best]) best = i;
    }
    EXPECT_EQ(fx.set.classify(x), fx.classes[best].label);
    // posterior routes through the same kernel: exact agreement.
    const std::vector<double> expected_post = num::log_scores_to_posterior(scores);
    ASSERT_EQ(post.size(), expected_post.size());
    for (std::size_t i = 0; i < post.size(); ++i) EXPECT_EQ(post[i], expected_post[i]);
  }
}

// --------------------------------------------------------------------------
// Allocation-free capture pipeline
// --------------------------------------------------------------------------

void expect_captures_equal(const core::FullCapture& a, const core::FullCapture& b) {
  EXPECT_EQ(a.trace, b.trace);  // bit-equal doubles
  EXPECT_EQ(a.noise, b.noise);
  EXPECT_EQ(a.permutation, b.permutation);
  ASSERT_EQ(a.segments.size(), b.segments.size());
  for (std::size_t i = 0; i < a.segments.size(); ++i) {
    EXPECT_EQ(a.segments[i].burst_begin, b.segments[i].burst_begin);
    EXPECT_EQ(a.segments[i].burst_end, b.segments[i].burst_end);
    EXPECT_EQ(a.segments[i].window_begin, b.segments[i].window_begin);
    EXPECT_EQ(a.segments[i].window_end, b.segments[i].window_end);
  }
}

TEST(CaptureReuse, CaptureIntoReusedStorageMatchesFreshCaptureBitExactly) {
  core::CampaignConfig cfg;
  cfg.n = 16;
  cfg.num_workers = 0;
  core::SamplerCampaign fresh(cfg);
  core::SamplerCampaign reused(cfg);
  core::FullCapture scratch;
  for (std::uint64_t seed = 3; seed <= 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::FullCapture expect = fresh.capture(seed);
    reused.capture_into(seed, scratch);  // same scratch across all seeds
    expect_captures_equal(scratch, expect);
  }
}

TEST(CaptureReuse, FaultedCaptureIntoMatchesFreshCapture) {
  core::CampaignConfig cfg;
  cfg.n = 16;
  cfg.num_workers = 0;
  cfg.faults.glitch_count = 3;
  cfg.faults.jitter_sigma = 0.01;
  core::SamplerCampaign fresh(cfg);
  core::SamplerCampaign reused(cfg);
  core::FullCapture scratch;
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::FullCapture expect = fresh.capture(seed);
    reused.capture_into(seed, scratch);
    expect_captures_equal(scratch, expect);
  }
}

TEST(CaptureReuse, ShuffledCaptureIntoMatchesFreshCapture) {
  core::CampaignConfig cfg;
  cfg.n = 16;
  cfg.num_workers = 0;
  cfg.shuffled_firmware = true;
  core::SamplerCampaign fresh(cfg);
  core::SamplerCampaign reused(cfg);
  core::FullCapture scratch;
  // Prime the scratch with a non-shuffled-shaped capture first so stale
  // permutation/segment contents must be fully overwritten.
  for (std::uint64_t seed = 21; seed <= 24; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::FullCapture expect = fresh.capture(seed);
    reused.capture_into(seed, scratch);
    expect_captures_equal(scratch, expect);
  }
}

TEST(CaptureReuse, WindowsFromCaptureOverloadsAgree) {
  core::CampaignConfig cfg;
  cfg.n = 16;
  cfg.num_workers = 0;
  core::SamplerCampaign campaign(cfg);
  std::vector<core::WindowRecord> reused;
  for (std::uint64_t seed = 5; seed <= 7; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const core::FullCapture cap = campaign.capture(seed);
    if (cap.segments.size() != cap.noise.size()) continue;
    const std::vector<core::WindowRecord> owned = core::windows_from_capture(cap);
    core::windows_from_capture(cap, reused);  // same vector across seeds
    ASSERT_EQ(reused.size(), owned.size());
    for (std::size_t i = 0; i < owned.size(); ++i) {
      EXPECT_EQ(reused[i].samples, owned[i].samples);
      EXPECT_EQ(reused[i].true_value, owned[i].true_value);
    }
  }
}

}  // namespace
