// Unit tests for message recovery (paper Eq. 2-3) and the residual search
// — driven with synthetic guesses so every path is deterministic and fast
// (the trace-driven versions live in test_attack_integration.cpp).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/message_recovery.hpp"
#include "core/residual_search.hpp"
#include "seal/encryptor.hpp"
#include "seal/sampler.hpp"

using namespace reveal;
using namespace reveal::core;

namespace {

struct RecoveryWorld {
  RecoveryWorld() : ctx(make_params()), rng(515), keygen(ctx, rng),
                    encryptor(ctx, keygen.public_key()) {}

  static seal::EncryptionParameters make_params() {
    seal::EncryptionParameters parms;
    parms.set_poly_modulus_degree(64);
    parms.set_coeff_modulus({seal::Modulus(132120577ULL)});
    parms.set_plain_modulus(256);
    return parms;
  }

  /// Encrypts `plain` with a fresh recorded witness.
  seal::Ciphertext encrypt(const seal::Plaintext& plain, seal::EncryptionWitness& witness) {
    return encryptor.encrypt(plain, rng, &witness);
  }

  seal::Context ctx;
  seal::StandardRandomGenerator rng;
  seal::KeyGenerator keygen;
  seal::Encryptor encryptor;
};

/// Builds guesses whose ML value is the truth, except `wrong` coordinates
/// where the truth is demoted to the second-ranked candidate.
std::vector<CoefficientGuess> make_guesses(const std::vector<std::int64_t>& e2,
                                           const std::vector<std::size_t>& wrong) {
  std::vector<CoefficientGuess> guesses(e2.size());
  for (std::size_t i = 0; i < e2.size(); ++i) {
    auto& g = guesses[i];
    const std::int64_t truth = e2[i];
    g.sign = truth > 0 ? 1 : (truth < 0 ? -1 : 0);
    if (truth == 0) {
      g.value = 0;
      g.support = {0};
      g.posterior = {1.0};
      continue;
    }
    // A decoy with the same sign but a different magnitude.
    const std::int64_t decoy = truth > 0 ? (truth == 1 ? 2 : truth - 1)
                                         : (truth == -1 ? -2 : truth + 1);
    const bool is_wrong =
        std::find(wrong.begin(), wrong.end(), i) != wrong.end();
    g.support = {static_cast<std::int32_t>(truth), static_cast<std::int32_t>(decoy)};
    g.posterior = is_wrong ? std::vector<double>{0.3, 0.7}
                           : std::vector<double>{0.9, 0.1};
    g.value = static_cast<std::int32_t>(is_wrong ? decoy : truth);
  }
  return guesses;
}

}  // namespace

TEST(MessageRecovery, ExactE2RecoversMessage) {
  RecoveryWorld w;
  std::vector<std::uint64_t> msg(64);
  for (std::size_t i = 0; i < 64; ++i) msg[i] = (i * 13 + 7) % 256;
  const seal::Plaintext plain(msg);
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(plain, witness);
  const auto recovered = recover_message(w.ctx, w.keygen.public_key(), ct, witness.e2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, plain);
}

TEST(MessageRecovery, WrongE2Fails) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{1}), witness);
  std::vector<std::int64_t> corrupt = witness.e2;
  corrupt[5] += 1;  // one coefficient off
  EXPECT_FALSE(recover_message(w.ctx, w.keygen.public_key(), ct, corrupt).has_value());
}

TEST(MessageRecovery, RecoverUReturnsTernary) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{9}), witness);
  const auto u = recover_u(w.ctx, w.keygen.public_key(), ct, witness.e2);
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(*u, witness.u);
}

TEST(MessageRecovery, SizeValidation) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{1}), witness);
  const std::vector<std::int64_t> short_e2(10, 0);
  EXPECT_THROW(
      (void)recover_message(w.ctx, w.keygen.public_key(), ct, short_e2),
      std::invalid_argument);
}

TEST(ResidualSearch, MlAssignmentAcceptedImmediately) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{3}), witness);
  const auto guesses = make_guesses(witness.e2, /*wrong=*/{});
  const ResidualSearchResult r = residual_search(w.ctx, w.keygen.public_key(), ct, guesses);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.e2, witness.e2);
  EXPECT_EQ(r.tried, 1u);
}

TEST(ResidualSearch, CorrectsDemotedCoefficients) {
  RecoveryWorld w;
  std::vector<std::uint64_t> msg(64);
  for (std::size_t i = 0; i < 64; ++i) msg[i] = (i * 3) % 256;
  const seal::Plaintext plain(msg);
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encryptor.encrypt(plain, w.rng, &witness);

  // Find a few nonzero coefficients to demote.
  std::vector<std::size_t> wrong;
  for (std::size_t i = 0; i < witness.e2.size() && wrong.size() < 4; ++i) {
    if (witness.e2[i] != 0) wrong.push_back(i);
  }
  ASSERT_EQ(wrong.size(), 4u);
  const auto guesses = make_guesses(witness.e2, wrong);
  const ResidualSearchResult r = residual_search(w.ctx, w.keygen.public_key(), ct, guesses);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.e2, witness.e2);
  EXPECT_GT(r.tried, 1u);
  EXPECT_LE(r.tried, 3000u);  // best-first over the widened set

  const auto recovered = recover_message(w.ctx, w.keygen.public_key(), ct, r.e2);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, plain);
}

TEST(ResidualSearch, BudgetExhaustionReportsFailure) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{2}), witness);
  // Demote many coefficients but give the search almost no budget.
  std::vector<std::size_t> wrong;
  for (std::size_t i = 0; i < witness.e2.size() && wrong.size() < 10; ++i) {
    if (witness.e2[i] != 0) wrong.push_back(i);
  }
  const auto guesses = make_guesses(witness.e2, wrong);
  ResidualSearchConfig cfg;
  cfg.max_tries = 3;
  const ResidualSearchResult r =
      residual_search(w.ctx, w.keygen.public_key(), ct, guesses, cfg);
  EXPECT_FALSE(r.found);
  EXPECT_LE(r.tried, 3u);
}

TEST(ResidualSearch, NoFalsePositives) {
  // If the true value is NOT among any candidate of a wrong coordinate,
  // the search must not "find" a bogus but consistent-looking e2.
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{5}), witness);
  auto guesses = make_guesses(witness.e2, {});
  // Remove the truth entirely from one nonzero coordinate's support.
  for (auto& g : guesses) {
    if (g.support.size() == 2) {
      g.support = {g.support[1]};  // decoy only
      g.posterior = {1.0};
      g.value = g.support[0];
      break;
    }
  }
  ResidualSearchConfig cfg;
  cfg.max_tries = 20000;
  const ResidualSearchResult r =
      residual_search(w.ctx, w.keygen.public_key(), ct, guesses, cfg);
  if (r.found) {
    // If something was found, it must decrypt-validate; a false positive
    // that also defeats the e1-bound oracle is cryptographically negligible.
    EXPECT_EQ(r.e2, witness.e2);
  } else {
    SUCCEED();
  }
}

TEST(ResidualSearch, InputValidation) {
  RecoveryWorld w;
  seal::EncryptionWitness witness;
  const seal::Ciphertext ct = w.encrypt(seal::Plaintext(std::uint64_t{1}), witness);
  std::vector<CoefficientGuess> too_few(10);
  EXPECT_THROW((void)residual_search(w.ctx, w.keygen.public_key(), ct, too_few),
               std::invalid_argument);
}
