// Tests for the ported SEAL samplers — including the exact encoding
// convention the attack exploits (positive / q - |v| / zero).

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/stats.hpp"
#include "seal/encryption_params.hpp"
#include "seal/sampler.hpp"

namespace seal = reveal::seal;

namespace {

seal::Context toy_context() { return seal::Context(seal::EncryptionParameters::toy_256()); }

}  // namespace

TEST(ClippedNormal, RejectsNegativeParameters) {
  EXPECT_THROW(seal::ClippedNormalDistribution(0.0, -1.0, 10.0), std::invalid_argument);
  EXPECT_THROW(seal::ClippedNormalDistribution(0.0, 1.0, -1.0), std::invalid_argument);
}

TEST(ClippedNormal, SampleStatisticsMatchSigma) {
  seal::StandardRandomGenerator gen(42);
  seal::RandomToStandardAdapter engine(gen);
  seal::ClippedNormalDistribution dist(0.0, 3.19, 41.0);
  reveal::num::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double v = dist(engine);
    ASSERT_LE(std::abs(v), 41.0);
    stats.add(v);
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.05);
}

TEST(ClippedNormal, ClippingEnforced) {
  seal::StandardRandomGenerator gen(7);
  seal::RandomToStandardAdapter engine(gen);
  seal::ClippedNormalDistribution dist(0.0, 10.0, 5.0);  // aggressive clip
  for (int i = 0; i < 20000; ++i) {
    ASSERT_LE(std::abs(dist(engine)), 5.0);
  }
}

TEST(SetPolyCoeffsNormal, EncodingConvention) {
  const seal::Context ctx = toy_context();
  const std::uint64_t q = ctx.coeff_modulus()[0].value();
  seal::StandardRandomGenerator gen(1);
  seal::Poly poly(ctx.n(), ctx.coeff_mod_count());
  std::vector<std::int64_t> sampled;
  seal::set_poly_coeffs_normal(poly.data(), gen, ctx, &sampled);
  ASSERT_EQ(sampled.size(), ctx.n());
  bool saw_pos = false, saw_neg = false, saw_zero = false;
  for (std::size_t i = 0; i < ctx.n(); ++i) {
    const std::int64_t v = sampled[i];
    if (v > 0) {
      EXPECT_EQ(poly.at(i, 0), static_cast<std::uint64_t>(v));
      saw_pos = true;
    } else if (v < 0) {
      EXPECT_EQ(poly.at(i, 0), q - static_cast<std::uint64_t>(-v));
      saw_neg = true;
    } else {
      EXPECT_EQ(poly.at(i, 0), 0u);
      saw_zero = true;
    }
  }
  EXPECT_TRUE(saw_pos);
  EXPECT_TRUE(saw_neg);
  EXPECT_TRUE(saw_zero);
}

TEST(SetPolyCoeffsNormal, SampledValuesWithinClip) {
  const seal::Context ctx = toy_context();
  seal::StandardRandomGenerator gen(2);
  reveal::num::RunningStats stats;
  for (int rep = 0; rep < 40; ++rep) {
    std::vector<std::int64_t> sampled;
    (void)seal::sample_error_poly(gen, ctx, &sampled);
    for (const std::int64_t v : sampled) {
      ASSERT_LE(std::llabs(v), 41);
      stats.add(static_cast<double>(v));
    }
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 3.19, 0.15);
}

TEST(SetPolyCoeffsNormal, MultiModulusRows) {
  seal::EncryptionParameters parms;
  parms.set_poly_modulus_degree(64);
  parms.set_coeff_modulus(seal::find_ntt_primes(20, 64, 2));
  parms.set_plain_modulus(17);
  const seal::Context ctx(parms);
  seal::StandardRandomGenerator gen(3);
  seal::Poly poly(ctx.n(), 2);
  std::vector<std::int64_t> sampled;
  seal::set_poly_coeffs_normal(poly.data(), gen, ctx, &sampled);
  for (std::size_t i = 0; i < ctx.n(); ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      const std::uint64_t qj = ctx.coeff_modulus()[j].value();
      const std::int64_t v = sampled[i];
      const std::uint64_t expect =
          v > 0 ? static_cast<std::uint64_t>(v)
                : (v < 0 ? qj - static_cast<std::uint64_t>(-v) : 0);
      ASSERT_EQ(poly.at(i, j), expect);
    }
  }
}

TEST(PatchedSampler, SameEncodingSameDistribution) {
  const seal::Context ctx = toy_context();
  const std::uint64_t q = ctx.coeff_modulus()[0].value();
  seal::StandardRandomGenerator gen(4);
  seal::Poly poly(ctx.n(), 1);
  std::vector<std::int64_t> sampled;
  seal::sample_poly_normal_v36(poly.data(), gen, ctx, &sampled);
  reveal::num::RunningStats stats;
  for (std::size_t i = 0; i < ctx.n(); ++i) {
    const std::int64_t v = sampled[i];
    const std::uint64_t expect =
        v > 0 ? static_cast<std::uint64_t>(v)
              : (v < 0 ? q - static_cast<std::uint64_t>(-v) : 0);
    ASSERT_EQ(poly.at(i, 0), expect);
    stats.add(static_cast<double>(v));
  }
  EXPECT_NEAR(stats.stddev(), 3.19, 0.45);  // one polynomial only
}

TEST(PatchedSampler, IdenticalOutputForIdenticalSeed) {
  // Same seed => the two sampler variants consume randomness identically
  // and must produce the same values (the patch changes control flow, not
  // the distribution).
  const seal::Context ctx = toy_context();
  seal::StandardRandomGenerator g1(5), g2(5);
  seal::Poly p1(ctx.n(), 1), p2(ctx.n(), 1);
  std::vector<std::int64_t> s1, s2;
  seal::set_poly_coeffs_normal(p1.data(), g1, ctx, &s1);
  seal::sample_poly_normal_v36(p2.data(), g2, ctx, &s2);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(p1, p2);
}

TEST(TernarySampler, UniformOverThreeValues) {
  const seal::Context ctx = toy_context();
  const std::uint64_t q = ctx.coeff_modulus()[0].value();
  seal::StandardRandomGenerator gen(6);
  std::size_t counts[3] = {0, 0, 0};
  for (int rep = 0; rep < 50; ++rep) {
    seal::Poly p;
    seal::sample_poly_ternary(p, gen, ctx);
    for (std::size_t i = 0; i < ctx.n(); ++i) {
      const std::uint64_t v = p.at(i, 0);
      if (v == 0) ++counts[0];
      else if (v == 1) ++counts[1];
      else if (v == q - 1) ++counts[2];
      else FAIL() << "non-ternary value " << v;
    }
  }
  const double total = counts[0] + counts[1] + counts[2];
  for (const std::size_t c : counts) EXPECT_NEAR(c / total, 1.0 / 3.0, 0.02);
}

TEST(UniformSampler, FullRangeCoverage) {
  const seal::Context ctx = toy_context();
  const std::uint64_t q = ctx.coeff_modulus()[0].value();
  seal::StandardRandomGenerator gen(8);
  seal::Poly p;
  seal::sample_poly_uniform(p, gen, ctx);
  reveal::num::RunningStats stats;
  for (std::size_t i = 0; i < ctx.n(); ++i) {
    ASSERT_LT(p.at(i, 0), q);
    stats.add(static_cast<double>(p.at(i, 0)));
  }
  EXPECT_NEAR(stats.mean(), q / 2.0, q * 0.1);
}

TEST(EncodeNoiseValues, MatchesSamplerConvention) {
  const seal::Context ctx = toy_context();
  const std::uint64_t q = ctx.coeff_modulus()[0].value();
  std::vector<std::int64_t> noise(ctx.n(), 0);
  noise[0] = 5;
  noise[1] = -3;
  noise[2] = 0;
  seal::Poly p;
  seal::encode_noise_values(noise, ctx, p);
  EXPECT_EQ(p.at(0, 0), 5u);
  EXPECT_EQ(p.at(1, 0), q - 3);
  EXPECT_EQ(p.at(2, 0), 0u);
  std::vector<std::int64_t> wrong(ctx.n() + 1, 0);
  EXPECT_THROW(seal::encode_noise_values(wrong, ctx, p), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CDT sampler suite (the related-work samplers, refs [10]/[12]).

#include "numeric/distributions.hpp"
#include "numeric/rng.hpp"
#include "seal/dgauss.hpp"

TEST(CdtSampler, TableIsMonotoneAndComplete) {
  const seal::CdtSampler cdt(3.19, 41.0);
  const auto& table = cdt.table();
  ASSERT_EQ(table.size(), cdt.support().size());
  ASSERT_EQ(cdt.support().front(), -41);
  ASSERT_EQ(cdt.support().back(), 41);
  for (std::size_t i = 1; i < table.size(); ++i) EXPECT_GE(table[i], table[i - 1]);
  EXPECT_EQ(table.back(), ~std::uint64_t{0});
}

TEST(CdtSampler, DistributionMatchesPmf) {
  const seal::CdtSampler cdt(3.19, 41.0);
  reveal::num::Xoshiro256StarStar rng(606);
  std::map<int, std::size_t> counts;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[cdt.sample(rng)];
  for (int k = -5; k <= 5; ++k) {
    const double expect = reveal::num::rounded_clipped_normal_pmf(k, 3.19, 41.0);
    const double got = static_cast<double>(counts[k]) / kDraws;
    EXPECT_NEAR(got, expect, 0.004) << k;
  }
}

TEST(CdtSampler, ConstantTimeVariantSameDistribution) {
  const seal::CdtSampler cdt(3.19, 41.0);
  // Identical random words must give identical outputs for both variants.
  reveal::num::Xoshiro256StarStar r1(77), r2(77);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(cdt.sample(r1), cdt.sample_constant_time(r2));
  }
}

TEST(CdtSampler, BoundsRespected) {
  const seal::CdtSampler cdt(1.0, 4.0);
  reveal::num::Xoshiro256StarStar rng(11);
  for (int i = 0; i < 20000; ++i) {
    const int v = cdt.sample(rng);
    ASSERT_GE(v, -4);
    ASSERT_LE(v, 4);
  }
}

TEST(CdtSampler, ParameterValidation) {
  EXPECT_THROW(seal::CdtSampler(0.0, 41.0), std::invalid_argument);
  EXPECT_THROW(seal::CdtSampler(3.19, -1.0), std::invalid_argument);
}
