// Observability-layer unit suite: the metrics registry's typed accessors
// and name-keyed merge, the latency histogram's clamping buckets, the span
// tracer's aggregate timings + bounded event ring, the NullSpanTracer
// compile-away contract, and the DiagnosticsReport JSON round trip (every
// finite double must survive serialize -> parse bit-exactly, and the strict
// parser must reject documents the emitter could not have produced).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/diagnostics.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "sca/report.hpp"

using namespace reveal;
using namespace reveal::obs;

namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterGetOrRegisterAndAdd) {
  Registry reg;
  const Registry::Id a = reg.counter("segmentation.retries");
  const Registry::Id again = reg.counter("segmentation.retries");
  EXPECT_EQ(a, again);  // get-or-register: one entry per name
  reg.add(a);
  reg.add(a, 41);
  EXPECT_EQ(reg.counter_value("segmentation.retries"), 42u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.contains("segmentation.retries"));
  EXPECT_FALSE(reg.contains("segmentation.retriez"));
  EXPECT_EQ(reg.kind("segmentation.retries"), MetricKind::kCounter);
}

TEST(ObsRegistry, GaugeKeepsMaximum) {
  Registry reg;
  const Registry::Id g = reg.gauge("capture.trace_samples.max");
  reg.set_max(g, 100.0);
  reg.set_max(g, 50.0);  // smaller value must not shrink the gauge
  EXPECT_EQ(reg.gauge_value("capture.trace_samples.max"), 100.0);
  reg.set_max(g, 250.0);
  EXPECT_EQ(reg.gauge_value("capture.trace_samples.max"), 250.0);
}

TEST(ObsRegistry, GaugeMaxOfNegativesIsNotZero) {
  // gauge_set must distinguish "never set" from max == 0: a gauge fed only
  // negative values reports the largest of them, not a phantom zero.
  Registry reg;
  const Registry::Id g = reg.gauge("drift.max");
  reg.set_max(g, -5.0);
  reg.set_max(g, -9.0);
  EXPECT_EQ(reg.gauge_value("drift.max"), -5.0);
}

TEST(ObsRegistry, HistogramBucketsClampAtTheEdges) {
  Registry reg;
  const Registry::Id h = reg.histogram("quality", 0.0, 1.0, 4);
  reg.observe(h, -3.0);   // below lo -> first bucket
  reg.observe(h, 0.0);    // lo -> first bucket
  reg.observe(h, 0.30);   // second bucket [0.25, 0.5)
  reg.observe(h, 0.99);   // last bucket
  reg.observe(h, 1.0);    // hi is outside the half-open range -> clamps last
  reg.observe(h, 7.0);    // above hi -> last bucket
  const LatencyHistogram& hist = reg.histogram_values("quality");
  EXPECT_EQ(hist.counts(), (std::vector<std::uint64_t>{2, 1, 0, 3}));
  EXPECT_EQ(hist.total(), 6u);
  // The exact sum may differ from the naive left-to-right float sum in the
  // last ulp (ExactSum rounds the true sum once instead of per-addition).
  EXPECT_DOUBLE_EQ(hist.sum(), -3.0 + 0.0 + 0.30 + 0.99 + 1.0 + 7.0);
}

TEST(ObsRegistry, HistogramSumIsOrderAndPartitionInvariant) {
  // Regression: the sum used to be a plain `double +=`, so per-worker
  // partials regrouped with the pool size and the merged total drifted in
  // the last ulps — the one field of the report that broke worker-count
  // invariance. The value set below makes naive summation order-sensitive
  // (large-magnitude cancellation plus classic 0.1 + 0.2 residue), so this
  // test fails against the old accumulator.
  const std::vector<double> values = {0.73,  1e-3, 0.41, 0.9999999, 3.0,
                                      -2.5,  1e17, 0.1,  -1e17,     0.2,
                                      5e-324, 0.30000000000000004};
  LatencyHistogram serial(0.0, 1.0, 20);
  for (const double v : values) serial.add(v);
  LatencyHistogram reversed(0.0, 1.0, 20);
  for (auto it = values.rbegin(); it != values.rend(); ++it) reversed.add(*it);
  EXPECT_EQ(serial, reversed);
  EXPECT_EQ(serial.sum(), reversed.sum());  // bit-exact, no tolerance
  for (const std::size_t workers : {2u, 3u, 5u}) {
    std::vector<LatencyHistogram> shards(workers, LatencyHistogram(0.0, 1.0, 20));
    for (std::size_t i = 0; i < values.size(); ++i) shards[i % workers].add(values[i]);
    LatencyHistogram merged(0.0, 1.0, 20);
    for (const LatencyHistogram& s : shards) merged.merge(s);
    EXPECT_EQ(merged, serial) << workers << " workers";
    EXPECT_EQ(merged.sum(), serial.sum()) << workers << " workers";
  }
}

TEST(ObsRegistry, HistogramSumExcludesNonFinite) {
  LatencyHistogram hist(0.0, 1.0, 4);
  hist.add(0.5);
  hist.add(std::numeric_limits<double>::quiet_NaN());
  hist.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.total(), 3u);  // every observation is still counted...
  EXPECT_EQ(hist.sum(), 0.5);   // ...but only finite values enter the sum
}

TEST(ObsRegistry, HistogramCountsNaNInFirstBucket) {
  // A NaN observation (e.g. a quality score from a degenerate segment) must
  // still be *counted* — silently dropping it would desynchronize the
  // histogram total from the attempt counters.
  LatencyHistogram hist(0.0, 1.0, 8);
  hist.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.total(), 1u);
}

TEST(ObsRegistry, KindConflictThrows) {
  Registry reg;
  (void)reg.counter("x");
  EXPECT_THROW((void)reg.gauge("x"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x", 0.0, 1.0, 4), std::logic_error);
  EXPECT_THROW((void)reg.gauge_value("x"), std::logic_error);
  EXPECT_THROW((void)reg.counter_value("nonexistent"), std::out_of_range);
}

TEST(ObsRegistry, HistogramRelayoutThrows) {
  Registry reg;
  (void)reg.histogram("h", 0.0, 1.0, 10);
  EXPECT_NO_THROW((void)reg.histogram("h", 0.0, 1.0, 10));  // same layout: fine
  EXPECT_THROW((void)reg.histogram("h", 0.0, 2.0, 10), std::logic_error);
  EXPECT_THROW((void)reg.histogram("h", 0.0, 1.0, 5), std::logic_error);
}

TEST(ObsRegistry, NamesAreSortedRegardlessOfRegistrationOrder) {
  Registry reg;
  (void)reg.counter("zeta");
  (void)reg.counter("alpha");
  (void)reg.gauge("mid");
  (void)reg.counter("beta");
  EXPECT_EQ(reg.names(MetricKind::kCounter),
            (std::vector<std::string>{"alpha", "beta", "zeta"}));
  EXPECT_EQ(reg.names(MetricKind::kGauge), (std::vector<std::string>{"mid"}));
}

TEST(ObsRegistry, MergeMatchesByNameNotRegistrationOrder) {
  // Two workers that registered the same metrics in different orders (and
  // one metric only a single worker saw) must merge into identical totals.
  Registry a;
  a.add(a.counter("captures"), 3);
  a.set_max(a.gauge("trace_max"), 10.0);
  a.observe(a.histogram("quality", 0.0, 1.0, 4), 0.1);

  Registry b;
  b.observe(b.histogram("quality", 0.0, 1.0, 4), 0.9);
  b.add(b.counter("retries"), 7);  // unseen by `a`
  b.add(b.counter("captures"), 2);
  b.set_max(b.gauge("trace_max"), 25.0);

  a.merge(b);
  EXPECT_EQ(a.counter_value("captures"), 5u);
  EXPECT_EQ(a.counter_value("retries"), 7u);
  EXPECT_EQ(a.gauge_value("trace_max"), 25.0);
  EXPECT_EQ(a.histogram_values("quality").counts(),
            (std::vector<std::uint64_t>{1, 0, 0, 1}));
}

TEST(ObsRegistry, MergeIncompatibleHistogramThrows) {
  Registry a;
  (void)a.histogram("h", 0.0, 1.0, 4);
  Registry b;
  (void)b.histogram("h", 0.0, 1.0, 8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SpanTracer
// ---------------------------------------------------------------------------

TEST(ObsSpanTracer, RecordAggregatesPerStage) {
  SpanTracer tracer;
  tracer.record(Stage::kSegmentation, 0, 100, 150);  // 50 ns
  tracer.record(Stage::kSegmentation, 1, 200, 230);  // 30 ns
  tracer.record(Stage::kSegmentation, 2, 300, 380);  // 80 ns
  const StageTiming& t = tracer.timing(Stage::kSegmentation);
  EXPECT_EQ(t.count, 3u);
  EXPECT_EQ(t.total_ns, 160u);
  EXPECT_EQ(t.min_ns, 30u);
  EXPECT_EQ(t.max_ns, 80u);
  EXPECT_EQ(tracer.timing(Stage::kCapture).count, 0u);
}

TEST(ObsSpanTracer, RingKeepsNewestEventsOldestFirst) {
  SpanTracer tracer(3);
  for (std::uint32_t i = 0; i < 5; ++i) {
    tracer.record(Stage::kCapture, i, 10 * i, 10 * i + 1);
  }
  EXPECT_EQ(tracer.dropped(), 2u);  // events 0 and 1 were overwritten
  const std::vector<SpanEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].index, 2u);
  EXPECT_EQ(events[1].index, 3u);
  EXPECT_EQ(events[2].index, 4u);
  // Aggregate timings are unaffected by ring eviction.
  EXPECT_EQ(tracer.timing(Stage::kCapture).count, 5u);
}

TEST(ObsSpanTracer, ZeroRingCapacityThrows) {
  EXPECT_THROW(SpanTracer tracer(0), std::invalid_argument);
}

TEST(ObsSpanTracer, ScopedSpanRecordsOnDestruction) {
  SpanTracer tracer;
  {
    auto span = tracer.span(Stage::kHints, 7);
    EXPECT_EQ(tracer.timing(Stage::kHints).count, 0u);  // still open
  }
  EXPECT_EQ(tracer.timing(Stage::kHints).count, 1u);
  const std::vector<SpanEvent> events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, Stage::kHints);
  EXPECT_EQ(events[0].index, 7u);
  EXPECT_GE(events[0].end_ns, events[0].begin_ns);
}

TEST(ObsSpanTracer, MovedFromSpanDoesNotDoubleRecord) {
  SpanTracer tracer;
  {
    auto outer = tracer.span(Stage::kEstimation);
    auto inner = std::move(outer);
    (void)inner;
  }
  EXPECT_EQ(tracer.timing(Stage::kEstimation).count, 1u);
}

TEST(ObsSpanTracer, MergeCombinesTimingsAndReplaysEvents) {
  SpanTracer a(8);
  a.record(Stage::kCapture, 0, 0, 10);
  SpanTracer b(8);
  b.record(Stage::kCapture, 1, 100, 140);
  b.record(Stage::kClassification, 1, 140, 141);

  a.merge(b);
  EXPECT_EQ(a.timing(Stage::kCapture).count, 2u);
  EXPECT_EQ(a.timing(Stage::kCapture).total_ns, 50u);
  EXPECT_EQ(a.timing(Stage::kCapture).min_ns, 10u);
  EXPECT_EQ(a.timing(Stage::kCapture).max_ns, 40u);
  EXPECT_EQ(a.timing(Stage::kClassification).count, 1u);
  const std::vector<SpanEvent> events = a.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].index, 0u);  // own event first, then the replay
  EXPECT_EQ(events[1].index, 1u);
}

TEST(ObsSpanTracer, NullTracerIsCompileTimeOff) {
  static_assert(!NullSpanTracer::kEnabled);
  static_assert(SpanTracer::kEnabled);
  // The null span is an empty object: instrumented pipeline code
  // instantiated with NullSpanTracer carries no stores and no clock reads.
  static_assert(sizeof(NullSpanTracer::Span) == 1);
  const NullSpanTracer tracer;
  auto span = tracer.span(Stage::kSegmentation, 3);
  (void)span;
}

// ---------------------------------------------------------------------------
// DiagnosticsReport JSON
// ---------------------------------------------------------------------------

DiagnosticsReport tricky_report() {
  DiagnosticsReport r;
  r.stages.push_back({"segmentation", 3, 160, 30, 80});
  r.stages.push_back({"classification", 1, 42, 42, 42});
  r.counters.push_back({"capture.count", 48});
  r.counters.push_back({"hints.perfect", 0});
  // Doubles chosen to break a lossy emitter: a non-dyadic fraction, the
  // largest finite double, a denormal, and a negative with many digits.
  r.gauges.push_back({"g.tenth", 0.1});
  r.gauges.push_back({"g.huge", 1.7976931348623157e308});
  r.gauges.push_back({"g.denormal", 4.9406564584124654e-324});
  r.gauges.push_back({"g.negative", -123456.78901234567});
  DiagnosticsReport::HistogramRow h;
  h.name = "segmentation.window_quality";
  h.lo = 0.0;
  h.hi = 1.0;
  h.counts = {5, 0, 17, 2};
  h.sum = 13.700000000000001;
  r.histograms.push_back(h);
  r.confusion.push_back({-3, -3, 101});
  r.confusion.push_back({-3, 5, 2});
  r.confusion.push_back({0, 0, 640});
  r.dropped_events = 9;
  return r;
}

TEST(ObsDiagnostics, JsonRoundTripIsBitExact) {
  const DiagnosticsReport report = tricky_report();
  const std::string json = report.to_json();
  const DiagnosticsReport parsed = DiagnosticsReport::from_json(json);
  EXPECT_EQ(parsed, report);
  // Fixed point: re-serializing the parse reproduces the document.
  EXPECT_EQ(parsed.to_json(), json);
}

TEST(ObsDiagnostics, EmptyReportRoundTrips) {
  const DiagnosticsReport empty;
  EXPECT_EQ(DiagnosticsReport::from_json(empty.to_json()), empty);
}

TEST(ObsDiagnostics, StrictParserRejectsMalformedDocuments) {
  const std::string good = tricky_report().to_json();
  EXPECT_THROW((void)DiagnosticsReport::from_json(good + "x"), std::runtime_error);
  EXPECT_THROW((void)DiagnosticsReport::from_json("{\"unknown_key\": 1}"),
               std::runtime_error);
  EXPECT_THROW((void)DiagnosticsReport::from_json("{"), std::runtime_error);
  EXPECT_THROW((void)DiagnosticsReport::from_json(""), std::runtime_error);
  EXPECT_THROW((void)DiagnosticsReport::from_json("[]"), std::runtime_error);
}

TEST(ObsDiagnostics, MakeReportOrdersSectionsAndSkipsIdleStages) {
  Registry reg;
  reg.add(reg.counter("zeta"), 1);
  reg.add(reg.counter("alpha"), 2);
  reg.set_max(reg.gauge("peak"), 3.5);
  reg.observe(reg.histogram("q", 0.0, 1.0, 2), 0.75);

  SpanTracer tracer;
  tracer.record(Stage::kClassification, 0, 10, 25);

  sca::ConfusionMatrix cm;
  cm.add(1, 1);
  cm.add(1, -2);
  cm.add(-2, -2);

  const DiagnosticsReport report = make_report(reg, &tracer, &cm);

  // Only the stage that ran appears; rows keep pipeline order semantics.
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_EQ(report.stages[0].stage, "classification");
  EXPECT_EQ(report.stages[0].count, 1u);
  EXPECT_EQ(report.stages[0].total_ns, 15u);

  ASSERT_EQ(report.counters.size(), 2u);
  EXPECT_EQ(report.counters[0].name, "alpha");  // name order, not registration
  EXPECT_EQ(report.counters[1].name, "zeta");

  ASSERT_EQ(report.gauges.size(), 1u);
  EXPECT_EQ(report.gauges[0].value, 3.5);

  ASSERT_EQ(report.histograms.size(), 1u);
  EXPECT_EQ(report.histograms[0].counts, (std::vector<std::uint64_t>{0, 1}));

  // Confusion rows are truth-major, zero-count cells omitted.
  ASSERT_EQ(report.confusion.size(), 3u);
  EXPECT_EQ(report.confusion[0].truth, -2);
  EXPECT_EQ(report.confusion[0].predicted, -2);
  EXPECT_EQ(report.confusion[0].count, 1u);
  EXPECT_EQ(report.confusion[1].truth, 1);
  EXPECT_EQ(report.confusion[1].predicted, -2);
  EXPECT_EQ(report.confusion[2].truth, 1);
  EXPECT_EQ(report.confusion[2].predicted, 1);

  // Null tracer / confusion leave their sections empty.
  const DiagnosticsReport bare = make_report(reg, nullptr, nullptr);
  EXPECT_TRUE(bare.stages.empty());
  EXPECT_TRUE(bare.confusion.empty());
  EXPECT_EQ(bare.counters.size(), 2u);
}

TEST(ObsDiagnostics, ConfusionMatrixMergeAddsCounts) {
  sca::ConfusionMatrix a;
  a.add(1, 1);
  a.add(2, -2);
  sca::ConfusionMatrix b;
  b.add(1, 1);
  b.add(3, 3);

  sca::ConfusionMatrix merged = a;
  merged.merge(b);
  sca::ConfusionMatrix expected;
  expected.add(1, 1);
  expected.add(2, -2);
  expected.add(1, 1);
  expected.add(3, 3);
  EXPECT_EQ(merged, expected);
  // Merging an empty matrix is the identity.
  sca::ConfusionMatrix empty;
  merged.merge(empty);
  EXPECT_EQ(merged, expected);
}

}  // namespace
