// Cross-module property sweeps (parameterized / randomized with fixed
// seeds): algebraic laws that must hold for ALL inputs, exercised over
// parameter grids — the "wide net" compliment to the targeted unit tests.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "numeric/distributions.hpp"
#include "numeric/rng.hpp"
#include "seal/biguint.hpp"
#include "seal/decryptor.hpp"
#include "seal/encryptor.hpp"
#include "seal/evaluator.hpp"
#include "seal/keys.hpp"
#include "seal/modarith.hpp"
#include "seal/sampler.hpp"
#include "riscv/assembler.hpp"
#include "riscv/machine.hpp"

using namespace reveal;
namespace seal = reveal::seal;

namespace {
__extension__ typedef unsigned __int128 u128;
}

// ---------------------------------------------------------------------------
// Modular arithmetic laws over a grid of moduli.

class ModArithLaws : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModArithLaws, FieldAxiomsHold) {
  const seal::Modulus q(GetParam());
  num::Xoshiro256StarStar rng(GetParam());
  for (int rep = 0; rep < 300; ++rep) {
    const std::uint64_t a = rng() % q.value();
    const std::uint64_t b = rng() % q.value();
    const std::uint64_t c = rng() % q.value();
    // Commutativity and associativity.
    ASSERT_EQ(seal::add_mod(a, b, q), seal::add_mod(b, a, q));
    ASSERT_EQ(seal::mul_mod(a, b, q), seal::mul_mod(b, a, q));
    ASSERT_EQ(seal::add_mod(seal::add_mod(a, b, q), c, q),
              seal::add_mod(a, seal::add_mod(b, c, q), q));
    ASSERT_EQ(seal::mul_mod(seal::mul_mod(a, b, q), c, q),
              seal::mul_mod(a, seal::mul_mod(b, c, q), q));
    // Distributivity.
    ASSERT_EQ(seal::mul_mod(a, seal::add_mod(b, c, q), q),
              seal::add_mod(seal::mul_mod(a, b, q), seal::mul_mod(a, c, q), q));
    // Additive inverse.
    ASSERT_EQ(seal::add_mod(a, seal::negate_mod(a, q), q), 0u);
    // Subtraction round trip.
    ASSERT_EQ(seal::add_mod(seal::sub_mod(a, b, q), b, q), a);
    // Multiplicative inverse (prime moduli, nonzero a).
    if (q.is_prime() && a != 0) {
      ASSERT_EQ(seal::mul_mod(a, seal::inverse_mod(a, q), q), 1u);
    }
    // Exponent law: a^(x+y) = a^x * a^y.
    const std::uint64_t x = rng() % 1000;
    const std::uint64_t y = rng() % 1000;
    ASSERT_EQ(seal::pow_mod(a, x + y, q),
              seal::mul_mod(seal::pow_mod(a, x, q), seal::pow_mod(a, y, q), q));
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusGrid, ModArithLaws,
                         ::testing::Values(3ULL, 257ULL, 65537ULL, 132120577ULL,
                                           (std::uint64_t{1} << 61) - 1,
                                           4294967291ULL));

// ---------------------------------------------------------------------------
// BigUInt ring laws against 128-bit reference arithmetic.

TEST(BigUIntLaws, RingAxiomsRandomized) {
  num::Xoshiro256StarStar rng(777);
  for (int rep = 0; rep < 500; ++rep) {
    const std::uint64_t a = rng(), b = rng(), c = rng() % 1000;
    const seal::BigUInt A(a), B(b), C(c);
    // (A + B) * C == A*C + B*C — verified limb-exactly via decimal strings.
    const seal::BigUInt lhs = (A + B) * C;
    const seal::BigUInt rhs = A * C + B * C;
    ASSERT_EQ(lhs, rhs);
    // divmod law: A = q*B + r with r < B.
    if (b != 0) {
      const auto [quot, rem] = seal::BigUInt::divmod(A, B);
      ASSERT_LT(rem, B);
      ASSERT_EQ(quot * B + rem, A);
    }
    // Shift laws.
    seal::BigUInt shifted = A;
    shifted <<= 37;
    seal::BigUInt back = shifted;
    back >>= 37;
    ASSERT_EQ(back, A);
  }
}

// ---------------------------------------------------------------------------
// BFV: encrypt/decrypt roundtrip and additive homomorphism over a grid.

class BfvGrid
    : public ::testing::TestWithParam<std::tuple<std::size_t, int, std::uint64_t>> {};

TEST_P(BfvGrid, RoundtripAndAdditiveHomomorphism) {
  const auto [n, q_bits, t] = GetParam();
  seal::EncryptionParameters parms;
  parms.set_poly_modulus_degree(n);
  parms.set_coeff_modulus({seal::find_ntt_prime(q_bits, n)});
  parms.set_plain_modulus(t);
  const seal::Context ctx(parms);
  seal::StandardRandomGenerator rng(n * 1000 + q_bits);
  const seal::KeyGenerator keygen(ctx, rng);
  const seal::Encryptor encryptor(ctx, keygen.public_key());
  const seal::Decryptor decryptor(ctx, keygen.secret_key());
  const seal::Evaluator evaluator(ctx);

  num::Xoshiro256StarStar msg_rng(n + t);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::uint64_t> ma(n), mb(n), sum(n);
    for (std::size_t i = 0; i < n; ++i) {
      ma[i] = msg_rng.uniform_below(t);
      mb[i] = msg_rng.uniform_below(t);
      sum[i] = (ma[i] + mb[i]) % t;
    }
    const seal::Plaintext pa(ma), pb(mb);
    seal::Ciphertext ca = encryptor.encrypt(pa, rng);
    const seal::Ciphertext cb = encryptor.encrypt(pb, rng);
    ASSERT_EQ(decryptor.decrypt(ca), pa);
    evaluator.add_inplace(ca, cb);
    ASSERT_EQ(decryptor.decrypt(ca), seal::Plaintext(sum));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ParameterGrid, BfvGrid,
    ::testing::Values(std::make_tuple(std::size_t{64}, 25, std::uint64_t{16}),
                      std::make_tuple(std::size_t{128}, 27, std::uint64_t{64}),
                      std::make_tuple(std::size_t{256}, 30, std::uint64_t{256}),
                      std::make_tuple(std::size_t{512}, 33, std::uint64_t{1024}),
                      std::make_tuple(std::size_t{1024}, 27, std::uint64_t{2})));

// ---------------------------------------------------------------------------
// RV32IM vs host-computed reference over random operands.

class MachineAluProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineAluProperty, MatchesHostSemantics) {
  using namespace reveal::riscv;
  num::Xoshiro256StarStar rng(GetParam());
  for (int rep = 0; rep < 60; ++rep) {
    const auto a = static_cast<std::uint32_t>(rng());
    const auto b = static_cast<std::uint32_t>(rng());
    Assembler as;
    as.li(a0, static_cast<std::int32_t>(a));
    as.li(a1, static_cast<std::int32_t>(b));
    as.add(a2, a0, a1);
    as.sub(a3, a0, a1);
    as.xor_(a4, a0, a1);
    as.and_(a5, a0, a1);
    as.or_(a6, a0, a1);
    as.mul(a7, a0, a1);
    as.sltu(t0, a0, a1);
    as.slt(t1, a0, a1);
    as.divu(t2, a0, a1);
    as.remu(t3, a0, a1);
    as.ebreak();
    Machine m(4096);
    m.load_program(as.assemble());
    ASSERT_EQ(m.run(100), Machine::StopReason::kHalt);
    ASSERT_EQ(m.reg(a2), a + b);
    ASSERT_EQ(m.reg(a3), a - b);
    ASSERT_EQ(m.reg(a4), a ^ b);
    ASSERT_EQ(m.reg(a5), a & b);
    ASSERT_EQ(m.reg(a6), a | b);
    ASSERT_EQ(m.reg(a7), a * b);
    ASSERT_EQ(m.reg(t0), a < b ? 1u : 0u);
    ASSERT_EQ(m.reg(t1),
              static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b) ? 1u : 0u);
    ASSERT_EQ(m.reg(t2), b == 0 ? ~0u : a / b);
    ASSERT_EQ(m.reg(t3), b == 0 ? a : a % b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineAluProperty, ::testing::Values(1u, 2u, 3u));

// ---------------------------------------------------------------------------
// Sampler distribution invariance: library sampler, firmware sampler and
// the CDT sampler must agree on the coarse distribution shape.

TEST(SamplerAgreement, ZeroAndSignProbabilitiesMatchAcrossImplementations) {
  const double p0_expected = num::zero_probability(3.19, 41.0);

  // Library sampler.
  const seal::Context ctx(seal::EncryptionParameters::toy_256());
  seal::StandardRandomGenerator gen(1);
  std::size_t zeros = 0, total = 0, positives = 0;
  for (int rep = 0; rep < 80; ++rep) {
    std::vector<std::int64_t> sampled;
    (void)seal::sample_error_poly(gen, ctx, &sampled);
    for (const auto v : sampled) {
      zeros += (v == 0);
      positives += (v > 0);
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(total), p0_expected, 0.01);
  // Sign symmetry.
  EXPECT_NEAR(static_cast<double>(positives) / static_cast<double>(total),
              (1.0 - p0_expected) / 2.0, 0.01);
}
