// Trace-alignment tests: synthetic jitter recovery and an end-to-end check
// that a trigger-jittered capture still attacks after alignment.

#include <gtest/gtest.h>

#include "core/acquisition.hpp"
#include "numeric/rng.hpp"
#include "sca/alignment.hpp"

using namespace reveal;
using namespace reveal::sca;

namespace {

std::vector<double> make_pattern(std::size_t len, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  std::vector<double> out(len);
  for (auto& v : out) v = rng.gaussian();
  return out;
}

}  // namespace

TEST(Alignment, RecoversKnownDelay) {
  const auto reference = make_pattern(300, 1);
  for (const std::ptrdiff_t delay : {-17, -3, 0, 5, 23}) {
    // trace[i + delay] = reference[i]  (content delayed by `delay`).
    std::vector<double> trace(reference.size() + 50, 0.0);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const std::ptrdiff_t pos = static_cast<std::ptrdiff_t>(i) + delay;
      if (pos >= 0 && pos < static_cast<std::ptrdiff_t>(trace.size())) {
        trace[static_cast<std::size_t>(pos)] = reference[i];
      }
    }
    const AlignmentResult r = find_alignment(reference, trace, 32);
    EXPECT_EQ(r.shift, -delay) << "delay " << delay;
    EXPECT_GT(r.correlation, 0.9);
    // After applying the shift the content sits on the reference base.
    const auto aligned = apply_shift(trace, r.shift);
    double err = 0.0;
    for (std::size_t i = 40; i < reference.size() - 40; ++i) {
      err += std::abs(aligned[i] - reference[i]);
    }
    EXPECT_LT(err / static_cast<double>(reference.size()), 0.05);
  }
}

TEST(Alignment, RobustToNoise) {
  const auto reference = make_pattern(400, 2);
  num::Xoshiro256StarStar rng(3);
  std::vector<double> trace(460, 0.0);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    trace[i + 11] = reference[i] + 0.3 * rng.gaussian();
  }
  const AlignmentResult r = find_alignment(reference, trace, 30);
  EXPECT_EQ(r.shift, -11);
}

TEST(Alignment, AlignSetNormalizesJitter) {
  const auto reference = make_pattern(200, 4);
  num::Xoshiro256StarStar rng(5);
  TraceSet set;
  std::vector<std::ptrdiff_t> delays;
  for (int k = 0; k < 10; ++k) {
    const std::ptrdiff_t delay = rng.uniform_int(0, 20);
    delays.push_back(delay);
    Trace t;
    t.samples.assign(240, 0.0);
    for (std::size_t i = 0; i < reference.size(); ++i) {
      t.samples[i + static_cast<std::size_t>(delay)] = reference[i];
    }
    set.add(std::move(t));
  }
  const auto results = align_set(set, reference, 25);
  for (std::size_t k = 0; k < results.size(); ++k) {
    EXPECT_EQ(results[k].shift, -delays[k]) << k;
  }
}

TEST(Alignment, InputValidation) {
  EXPECT_THROW((void)find_alignment({}, {1.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)find_alignment({1.0}, {}, 1), std::invalid_argument);
  // Overlap impossible: tiny trace with huge shift window.
  EXPECT_THROW((void)find_alignment(make_pattern(100, 6), {1.0, 2.0}, 90),
               std::invalid_argument);
}

TEST(Alignment, JitteredCaptureStillSegments) {
  // Simulate trigger jitter: prepend a random-length quiet prefix to a real
  // capture. Because segmentation is per-trace, the attack pipeline is
  // insensitive to the global offset — with or without re-alignment.
  core::CampaignConfig cfg;
  cfg.n = 16;
  core::SamplerCampaign campaign(cfg);
  const auto cap = campaign.capture(77);
  ASSERT_EQ(cap.segments.size(), 16u);

  num::Xoshiro256StarStar rng(9);
  for (const std::size_t jitter : {3u, 17u, 64u}) {
    std::vector<double> shifted(jitter, 4.0);  // idle baseline
    for (const double v : cap.trace) shifted.push_back(v);
    const auto segments = segment_trace(shifted, cfg.segmentation);
    EXPECT_EQ(segments.size(), 16u) << "jitter " << jitter;
    if (!segments.empty()) {
      EXPECT_EQ(segments[0].burst_begin, cap.segments[0].burst_begin + jitter);
    }
  }
  (void)rng;
}
