// TVLA (Welch t-test) and CPA tests — synthetic data with planted leakage,
// plus an end-to-end assessment of the vulnerable vs patched firmware.

#include <gtest/gtest.h>

#include <cmath>

#include "core/acquisition.hpp"
#include "numeric/bits.hpp"
#include "numeric/rng.hpp"
#include "sca/tvla.hpp"

using namespace reveal;
using namespace reveal::sca;

namespace {

/// Two populations identical except for a planted mean shift at `leak_at`.
void make_populations(TraceSet& a, TraceSet& b, std::size_t len, std::size_t leak_at,
                      double shift, std::size_t count, std::uint64_t seed) {
  num::Xoshiro256StarStar rng(seed);
  for (std::size_t k = 0; k < count; ++k) {
    Trace ta, tb;
    for (std::size_t i = 0; i < len; ++i) {
      ta.samples.push_back(rng.gaussian());
      tb.samples.push_back(rng.gaussian() + (i == leak_at ? shift : 0.0));
    }
    a.add(std::move(ta));
    b.add(std::move(tb));
  }
}

}  // namespace

TEST(Tvla, DetectsPlantedLeak) {
  TraceSet a, b;
  make_populations(a, b, 50, 17, 1.0, 500, 1);
  const TvlaReport report = tvla_assess(a, b);
  EXPECT_TRUE(report.leaks());
  EXPECT_EQ(report.max_index, 17u);
  EXPECT_GT(report.max_abs_t, 10.0);
  EXPECT_GE(report.leaking_points, 1u);
}

TEST(Tvla, PassesOnIdenticalDistributions) {
  TraceSet a, b;
  make_populations(a, b, 50, 17, /*shift=*/0.0, 500, 2);
  const TvlaReport report = tvla_assess(a, b);
  // No planted difference: |t| should stay below the threshold
  // (probability of a false positive over 50 points is tiny at 4.5 sigma).
  EXPECT_FALSE(report.leaks());
}

TEST(Tvla, TStatisticScalesWithSampleCount) {
  TraceSet a1, b1, a2, b2;
  make_populations(a1, b1, 10, 3, 0.5, 100, 3);
  make_populations(a2, b2, 10, 3, 0.5, 1600, 3);
  const double t_small = tvla_assess(a1, b1).max_abs_t;
  const double t_large = tvla_assess(a2, b2).max_abs_t;
  // t grows ~ sqrt(n): 4x samples -> ~2x statistic.
  EXPECT_GT(t_large, t_small * 1.4);
}

TEST(Tvla, InputValidation) {
  TraceSet a, b;
  a.add({{1.0, 2.0}, 0});
  b.add({{1.0, 2.0}, 0});
  EXPECT_THROW(welch_t_test(a, b), std::invalid_argument);  // < 2 traces each
  a.add({{2.0, 3.0}, 0});
  b.add({{2.0, 3.0}, 0});
  EXPECT_NO_THROW(welch_t_test(a, b));
}

TEST(Cpa, RecoversPlantedCorrelation) {
  num::Xoshiro256StarStar rng(4);
  TraceSet traces;
  std::vector<double> hypotheses;
  for (int k = 0; k < 400; ++k) {
    const double h = rng.uniform_int(0, 8);  // e.g. a Hamming weight
    Trace t;
    for (std::size_t i = 0; i < 30; ++i) {
      double v = rng.gaussian();
      if (i == 11) v += 0.4 * h;  // leaking point
      t.samples.push_back(v);
    }
    traces.add(std::move(t));
    hypotheses.push_back(h);
  }
  const auto rho = cpa_correlation(traces, hypotheses);
  const auto peaks = cpa_peaks(rho, 1);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].index, 11u);
  EXPECT_GT(peaks[0].correlation, 0.5);
}

TEST(Cpa, PeaksRespectSpacing) {
  const std::vector<double> rho = {0.0, 0.9, 0.8, 0.0, 0.0, -0.7};
  const auto peaks = cpa_peaks(rho, 3, 2);
  ASSERT_EQ(peaks.size(), 2u);  // index 2 suppressed by spacing
  EXPECT_EQ(peaks[0].index, 1u);
  EXPECT_EQ(peaks[1].index, 5u);
  EXPECT_LT(peaks[1].correlation, 0.0);
}

TEST(Cpa, InputValidation) {
  TraceSet traces;
  traces.add({{1.0}, 0});
  EXPECT_THROW(cpa_correlation(traces, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(cpa_correlation(traces, {1.0}), std::invalid_argument);  // < 3 traces
}

TEST(TvlaIntegration, BothFirmwaresFailTvla) {
  // Populations: windows of positive vs negative coefficients. The
  // vulnerable firmware leaks through control flow AND data; the patched
  // one removes the control-flow/negation leaks but the stored value
  // (v vs q-|v|) still produces first-order leakage — exactly the
  // "different vulnerability" paper §V-A leaves for future work. TVLA
  // correctly fails both; the *attack-level* difference (sign classifier,
  // zero detection) is quantified in bench_patched_sampler.
  auto collect = [](bool patched) {
    core::CampaignConfig cfg;
    cfg.n = 64;
    cfg.patched_firmware = patched;
    core::SamplerCampaign campaign(cfg);
    TraceSet pos, neg;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
      const auto cap = campaign.capture(seed);
      if (cap.segments.size() != cfg.n) continue;
      const auto windows = core::windows_from_capture(cap);
      for (std::size_t i = 0; i < windows.size(); ++i) {
        if (windows[i].samples.size() < 100) continue;
        Trace t;
        t.samples.assign(windows[i].samples.begin(), windows[i].samples.begin() + 100);
        if (cap.noise[i] > 0) pos.add(std::move(t));
        else if (cap.noise[i] < 0) neg.add(std::move(t));
      }
    }
    return tvla_assess(pos, neg);
  };

  const TvlaReport vuln = collect(false);
  const TvlaReport patched = collect(true);
  EXPECT_TRUE(vuln.leaks());
  EXPECT_GT(vuln.max_abs_t, 100.0);     // control-flow divergence: massive
  EXPECT_TRUE(patched.leaks());         // data-flow leakage survives the patch
  EXPECT_GT(patched.max_abs_t, 100.0);  // ... and is also first-order strong
}

TEST(CpaIntegration, StoreValueHammingWeightLeaks) {
  // CPA with the |coefficient| Hamming-weight hypothesis localizes the
  // leaking store in positive-coefficient windows.
  core::CampaignConfig cfg;
  cfg.n = 64;
  core::SamplerCampaign campaign(cfg);
  TraceSet traces;
  std::vector<double> hypotheses;
  for (std::uint64_t seed = 100; seed <= 140; ++seed) {
    const auto cap = campaign.capture(seed);
    if (cap.segments.size() != cfg.n) continue;
    const auto windows = core::windows_from_capture(cap);
    for (std::size_t i = 0; i < windows.size(); ++i) {
      if (cap.noise[i] <= 0 || windows[i].samples.size() < 100) continue;
      Trace t;
      t.samples.assign(windows[i].samples.begin(), windows[i].samples.begin() + 100);
      traces.add(std::move(t));
      hypotheses.push_back(static_cast<double>(
          num::hamming_weight(static_cast<std::uint32_t>(cap.noise[i]))));
    }
  }
  ASSERT_GT(traces.size(), 200u);
  const auto rho = cpa_correlation(traces, hypotheses);
  const auto peaks = cpa_peaks(rho, 3, 2);
  ASSERT_FALSE(peaks.empty());
  EXPECT_GT(std::fabs(peaks[0].correlation), 0.5);  // strong first-order leak
}

TEST(Tvla, SecondOrderDetectsVarianceLeak) {
  // Two populations with equal means everywhere but different variance at
  // one point: invisible to the first-order test, flagged by the second.
  num::Xoshiro256StarStar rng(909);
  TraceSet a, b;
  for (int k = 0; k < 1500; ++k) {
    Trace ta, tb;
    for (std::size_t i = 0; i < 20; ++i) {
      ta.samples.push_back(rng.gaussian());
      tb.samples.push_back(rng.gaussian() * (i == 7 ? 2.0 : 1.0));
    }
    a.add(std::move(ta));
    b.add(std::move(tb));
  }
  const auto t1 = welch_t_test(a, b);
  double max_t1 = 0.0;
  for (const double t : t1) max_t1 = std::max(max_t1, std::fabs(t));
  EXPECT_LT(max_t1, kTvlaThreshold + 1.0);  // first order (almost) blind

  const auto t2 = welch_t_test_second_order(a, b);
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < t2.size(); ++i) {
    if (std::fabs(t2[i]) > std::fabs(t2[argmax])) argmax = i;
  }
  EXPECT_EQ(argmax, 7u);
  EXPECT_GT(std::fabs(t2[7]), kTvlaThreshold);
}
