// LWE instance generation, hint solving, the primal attack, and the DBDD
// security estimator (including the paper's SEAL-128 anchor point).

#include <gtest/gtest.h>

#include "lwe/dbdd.hpp"
#include "lwe/lwe.hpp"
#include "numeric/rng.hpp"

using namespace reveal::lwe;

namespace {

std::int64_t center(std::uint64_t x, std::uint64_t q) {
  return x > q / 2 ? static_cast<std::int64_t>(x) - static_cast<std::int64_t>(q)
                   : static_cast<std::int64_t>(x);
}

/// Checks b - A s - e == 0 (mod q).
bool instance_consistent(const SampledLwe& s) {
  for (std::size_t i = 0; i < s.instance.m; ++i) {
    std::int64_t acc = 0;
    for (std::size_t j = 0; j < s.instance.n; ++j) {
      acc += center(s.instance.at(i, j), s.instance.q) * s.secret[j];
      acc %= static_cast<std::int64_t>(s.instance.q);
    }
    acc += s.error[i];
    std::int64_t b = static_cast<std::int64_t>(s.instance.b[i]);
    if (((acc - b) % static_cast<std::int64_t>(s.instance.q) + s.instance.q) %
            s.instance.q != 0)
      return false;
  }
  return true;
}

/// The paper's SEAL-128 instance as fed to the estimator: n = m = 1024,
/// q = 132120577, sigma = 3.2 for both secret and error (framework default).
DbddParams seal128_params() {
  DbddParams p;
  p.secret_dim = 1024;
  p.error_dim = 1024;
  p.q = 132120577.0;
  p.secret_variance = 3.2 * 3.2;
  p.error_variance = 3.2 * 3.2;
  return p;
}

}  // namespace

TEST(Lwe, SampledInstanceIsConsistent) {
  reveal::num::Xoshiro256StarStar rng(1);
  LweParams params;
  params.n = 10;
  params.m = 20;
  params.q = 3329;
  const SampledLwe s = sample_lwe(params, rng);
  EXPECT_TRUE(instance_consistent(s));
  for (const auto v : s.secret) EXPECT_LE(std::llabs(v), 1);  // ternary
}

TEST(Lwe, GaussianSecretVariant) {
  reveal::num::Xoshiro256StarStar rng(2);
  LweParams params;
  params.n = 16;
  params.m = 16;
  params.secret = SecretDist::kGaussian;
  params.sigma = 3.0;
  const SampledLwe s = sample_lwe(params, rng);
  EXPECT_TRUE(instance_consistent(s));
}

TEST(Lwe, KannanEmbeddingContainsPlantedVector) {
  reveal::num::Xoshiro256StarStar rng(3);
  LweParams params;
  params.n = 6;
  params.m = 10;
  params.q = 1009;
  const SampledLwe s = sample_lwe(params, rng);
  const auto basis = kannan_embedding(s.instance);
  const std::size_t d = params.m + params.n + 1;
  ASSERT_EQ(basis.size(), d);

  // Reconstruct (e | -s | 1) as an integer combination:
  // target_row - sum_j s_j * A_row_j - k_i * q_rows.
  std::vector<std::int64_t> v = basis[d - 1];
  for (std::size_t j = 0; j < params.n; ++j) {
    for (std::size_t c = 0; c < d; ++c) v[c] -= s.secret[j] * basis[params.m + j][c];
  }
  // Reduce the first m coordinates mod q toward the planted error.
  for (std::size_t i = 0; i < params.m; ++i) {
    const auto qi = static_cast<std::int64_t>(params.q);
    std::int64_t r = v[i] % qi;
    if (r > qi / 2) r -= qi;
    if (r < -qi / 2) r += qi;
    // Subtracting multiples of q rows realizes exactly this reduction.
    v[i] = r;
  }
  for (std::size_t i = 0; i < params.m; ++i) EXPECT_EQ(v[i], s.error[i]) << i;
  for (std::size_t j = 0; j < params.n; ++j) EXPECT_EQ(v[params.m + j], -s.secret[j]);
  EXPECT_EQ(v[d - 1], 1);
}

TEST(Lwe, SolveWithPerfectHintsRecoversSecret) {
  reveal::num::Xoshiro256StarStar rng(4);
  LweParams params;
  params.n = 12;
  params.m = 24;
  params.q = 3329;
  const SampledLwe s = sample_lwe(params, rng);
  std::vector<std::optional<std::int64_t>> hints(params.m);
  for (std::size_t i = 0; i < params.m; ++i) hints[i] = s.error[i];  // all known
  const auto recovered = solve_with_perfect_hints(s.instance, hints);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, s.secret);
}

TEST(Lwe, SolveWithTooFewHintsFails) {
  reveal::num::Xoshiro256StarStar rng(5);
  LweParams params;
  params.n = 12;
  params.m = 24;
  const SampledLwe s = sample_lwe(params, rng);
  std::vector<std::optional<std::int64_t>> hints(params.m);
  for (std::size_t i = 0; i < 5; ++i) hints[i] = s.error[i];  // only 5 < n
  EXPECT_FALSE(solve_with_perfect_hints(s.instance, hints).has_value());
}

TEST(Lwe, SolveRejectsCompositeModulus) {
  LweInstance inst;
  inst.n = 2;
  inst.m = 2;
  inst.q = 16;  // composite
  inst.a = {1, 2, 3, 4};
  inst.b = {0, 0};
  std::vector<std::optional<std::int64_t>> hints = {0, 0};
  EXPECT_THROW((void)solve_with_perfect_hints(inst, hints), std::invalid_argument);
}

TEST(Lwe, PrimalAttackRecoversToySecret) {
  reveal::num::Xoshiro256StarStar rng(6);
  LweParams params;
  params.n = 8;
  params.m = 16;
  params.q = 1009;
  params.sigma = 1.5;
  const SampledLwe s = sample_lwe(params, rng);
  const auto recovered = primal_attack(s.instance, /*block_size=*/10, /*max_tours=*/12);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, s.secret);
}

TEST(Dbdd, DeltaDecreasingInBeta) {
  double prev = bkz_delta(2.0);
  for (double beta = 10; beta <= 500; beta += 10) {
    const double d = bkz_delta(beta);
    EXPECT_LT(d, prev + 1e-12) << beta;
    EXPECT_GT(d, 1.0);
    prev = d;
  }
}

TEST(Dbdd, NoHintEstimateMatchesPaperAnchor) {
  // Paper Table III: attack without hints = 382.25 bikz (2^128). Our
  // GSA-intersect solver should land in the same neighbourhood.
  const SecurityEstimate est = estimate_lwe_security(seal128_params());
  EXPECT_GT(est.beta, 330.0);
  EXPECT_LT(est.beta, 440.0);
  EXPECT_NEAR(est.bits, est.beta / kBikzPerBit, 1e-9);
}

TEST(Dbdd, PerfectHintsCollapseSecurity) {
  DbddEstimator est(seal128_params());
  est.integrate_perfect_error_hints(1024);  // all of e2 known
  const SecurityEstimate with_hints = est.estimate();
  // Paper Table III: 12.2 bikz — "complete break" territory.
  EXPECT_LT(with_hints.beta, 40.0);
  EXPECT_LT(with_hints.bits, 14.0);
}

TEST(Dbdd, HintsMonotonicallyReduceBeta) {
  double prev = estimate_lwe_security(seal128_params()).beta;
  for (const std::size_t hints : {128u, 256u, 512u, 768u, 1024u}) {
    DbddEstimator est(seal128_params());
    est.integrate_perfect_error_hints(hints);
    const double beta = est.estimate().beta;
    EXPECT_LE(beta, prev + 1e-9) << hints;
    prev = beta;
  }
}

TEST(Dbdd, ApproximateHintStrengthIsMonotoneInMeasurementNoise) {
  // Smaller measurement variance => stronger hint => smaller beta. (For
  // near-exact measurements the DDGR20 framework — and our hint bridge in
  // core/hints.cpp — promotes the hint to a *perfect* one, which also
  // shrinks the dimension; the raw conditioning update keeps the
  // coordinate, so it is strictly weaker than a perfect hint.)
  const double baseline = estimate_lwe_security(seal128_params()).beta;
  double prev = baseline;
  for (const double eps : {100.0, 10.0, 1.0, 0.01}) {
    DbddEstimator est(seal128_params());
    est.integrate_approximate_error_hints(eps, 512);
    const double beta = est.estimate().beta;
    EXPECT_LT(beta, prev + 1e-9) << eps;
    prev = beta;
  }
  DbddEstimator perfect(seal128_params());
  perfect.integrate_perfect_error_hints(512);
  EXPECT_LE(perfect.estimate().beta, prev + 1e-9);
}

TEST(Dbdd, PosteriorHintsReduceSecurity) {
  const double baseline = estimate_lwe_security(seal128_params()).beta;
  DbddEstimator est(seal128_params());
  // Sign knowledge: variance drops from 10.24 to ~3.7.
  est.integrate_posterior_error_hints(3.7, 900);
  est.integrate_perfect_error_hints(124);  // zeros
  const double beta = est.estimate().beta;
  EXPECT_LT(beta, baseline - 50.0);
  EXPECT_GT(beta, 100.0);  // signs alone must NOT break the scheme (Table IV)
}

TEST(Dbdd, DimensionTracking) {
  DbddEstimator est(seal128_params());
  EXPECT_EQ(est.dim(), 2049u);
  est.integrate_perfect_error_hints(10);
  EXPECT_EQ(est.dim(), 2039u);
  EXPECT_EQ(est.live_error_coords(), 1014u);
  est.integrate_perfect_secret_hints(4);
  EXPECT_EQ(est.live_secret_coords(), 1020u);
}

TEST(Dbdd, ParameterValidation) {
  DbddParams bad;
  EXPECT_THROW(DbddEstimator{bad}, std::invalid_argument);
  DbddEstimator est(seal128_params());
  EXPECT_THROW(est.integrate_approximate_error_hints(-1.0, 1), std::invalid_argument);
  EXPECT_THROW(est.integrate_posterior_error_hints(0.0, 1), std::invalid_argument);
  EXPECT_THROW(est.integrate_perfect_error_hints(5000), std::logic_error);
}

TEST(Dbdd, BikzToBitsConvention) {
  // Footnote 3: 382.25 bikz corresponds to 128 bits.
  EXPECT_NEAR(382.25 / kBikzPerBit, 128.0, 1e-9);
}

TEST(Lwe, BddAttackRecoversToySecret) {
  reveal::num::Xoshiro256StarStar rng(8);
  LweParams params;
  params.n = 8;
  params.m = 16;
  params.q = 1009;
  params.sigma = 1.5;
  const SampledLwe s = sample_lwe(params, rng);
  const auto recovered = bdd_attack(s.instance, /*block_size=*/10, /*max_tours=*/8);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, s.secret);
}

TEST(Dbdd, ModularHintsReduceBeta) {
  const double baseline = estimate_lwe_security(seal128_params()).beta;
  double prev = baseline;
  for (const double k : {2.0, 4.0, 16.0}) {
    DbddEstimator est(seal128_params());
    est.integrate_modular_error_hints(k, 1024);
    const double beta = est.estimate().beta;
    EXPECT_LT(beta, prev) << k;
    prev = beta;
  }
  DbddEstimator bad(seal128_params());
  EXPECT_THROW(bad.integrate_modular_error_hints(1.5, 1), std::invalid_argument);
  EXPECT_THROW(bad.integrate_modular_error_hints(2.0, 5000), std::logic_error);
}

TEST(Dbdd, ModularHintWeakerThanPerfect) {
  DbddEstimator modular(seal128_params());
  modular.integrate_modular_error_hints(4.0, 1024);
  DbddEstimator perfect(seal128_params());
  perfect.integrate_perfect_error_hints(1024);
  EXPECT_GT(modular.estimate().beta, perfect.estimate().beta);
}

// ---------------------------------------------------------------------------
// Full-covariance DBDD estimator.

#include "lwe/dbdd_matrix.hpp"

namespace {
DbddParams small_params() {
  // Deliberately tight q so the toy instance is NOT already broken at
  // beta = 2 and hint effects are visible in the estimate.
  DbddParams p;
  p.secret_dim = 48;
  p.error_dim = 48;
  p.q = 67.0;
  p.secret_variance = 2.0 / 3.0;
  p.error_variance = 2.25;
  return p;
}
}  // namespace

TEST(DbddMatrix, AgreesWithLiteOnNoHints) {
  const DbddMatrixEstimator full(small_params());
  const DbddEstimator lite(small_params());
  EXPECT_EQ(full.dim(), lite.dim());
  EXPECT_NEAR(full.logvol(), lite.logvol(), 1e-9);
  EXPECT_NEAR(full.estimate().beta, lite.estimate().beta, 1e-3);
}

TEST(DbddMatrix, AgreesWithLiteOnCoordinateHints) {
  DbddMatrixEstimator full(small_params());
  DbddEstimator lite(small_params());
  for (std::size_t i = 0; i < 16; ++i) full.integrate_perfect_error_hint(i);
  lite.integrate_perfect_error_hints(16);
  EXPECT_EQ(full.dim(), lite.dim());
  EXPECT_NEAR(full.logvol(), lite.logvol(), 1e-6);
  EXPECT_NEAR(full.estimate().beta, lite.estimate().beta, 0.1);
}

TEST(DbddMatrix, ApproximateCoordinateHintsAgreeWithLite) {
  DbddMatrixEstimator full(small_params());
  DbddEstimator lite(small_params());
  const double eps = 0.5;
  for (std::size_t i = 0; i < 8; ++i) {
    std::vector<double> v(96, 0.0);
    v[47 - i] = 1.0;  // the lite variant hints from the back
    full.integrate_approximate_hint(v, eps);
  }
  lite.integrate_approximate_error_hints(eps, 8);
  EXPECT_NEAR(full.logvol(), lite.logvol(), 1e-6);
  EXPECT_NEAR(full.estimate().beta, lite.estimate().beta, 0.1);
}

TEST(DbddMatrix, GeneralDirectionHintsReduceBeta) {
  DbddMatrixEstimator est(small_params());
  const double baseline = est.estimate().beta;
  // Aggregate hints: <e, v> with v = e_i + e_{i+1} (e.g. a leakage of the
  // SUM of two coefficients — inexpressible in the coordinate-only lite
  // estimator).
  for (std::size_t i = 0; i + 1 < 32; i += 2) {
    std::vector<double> v(96, 0.0);
    v[i] = 1.0;
    v[i + 1] = 1.0;
    est.integrate_perfect_hint(v);
  }
  EXPECT_LT(est.estimate().beta, baseline);
}

TEST(DbddMatrix, RepeatedDirectionIsDegenerate) {
  DbddMatrixEstimator est(small_params());
  std::vector<double> v(96, 0.0);
  v[3] = 1.0;
  EXPECT_EQ(est.integrate_perfect_hint(v), HintOutcome::kApplied);
  const double logvol = est.logvol();
  const std::size_t dim = est.dim();
  // Regression (used to throw std::logic_error): a repeated hint sequence
  // must be survivable mid-sweep — typed rejection, state untouched.
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(est.integrate_perfect_hint(v), HintOutcome::kDegenerate);
    EXPECT_EQ(est.logvol(), logvol);
    EXPECT_EQ(est.dim(), dim);
  }
  // An approximate hint along a fully determined direction carries no
  // information either (its posterior equals the prior) — same rejection.
  EXPECT_EQ(est.integrate_approximate_hint(v, 1.0), HintOutcome::kDegenerate);
  EXPECT_EQ(est.rejected_hints(), 4u);
  // The estimator keeps working after rejections.
  std::vector<double> w(96, 0.0);
  w[5] = 1.0;
  EXPECT_EQ(est.integrate_perfect_hint(w), HintOutcome::kApplied);
}

TEST(DbddMatrix, Validation) {
  DbddParams bad;
  EXPECT_THROW(DbddMatrixEstimator{bad}, std::invalid_argument);
  DbddMatrixEstimator est(small_params());
  EXPECT_THROW(est.integrate_perfect_hint(std::vector<double>(3, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(est.integrate_approximate_hint(std::vector<double>(96, 1.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(est.integrate_perfect_error_hint(48), std::invalid_argument);
}
