// Fuzz-style corrupt-input suite for every binary loader (run under both
// REVEAL_SANITIZE configs by tests/CMakeLists.txt): truncation sweeps must
// throw on every strict prefix, and single-byte corruption sweeps must
// either throw or return — never crash, over-allocate, or trip a sanitizer.
// Also pins the two hardening fixes this layer grew from: the uint64 wrap
// in seal's n * k element guard and TraceSet::load's remaining-bytes caps.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/campaign_checkpoint.hpp"
#include "corpus/trace_store.hpp"
#include "numeric/binary_io.hpp"
#include "numeric/stats.hpp"
#include "obs/metrics.hpp"
#include "sca/report.hpp"
#include "sca/template_attack.hpp"
#include "sca/trace.hpp"
#include "seal/serialization.hpp"

using namespace reveal;

namespace {

using Loader = std::function<void(std::istream&)>;

std::string serialize(const std::function<void(std::ostream&)>& saver) {
  std::ostringstream out(std::ios::binary);
  saver(out);
  return out.str();
}

/// Every strict prefix of a serialized blob must throw (all formats carry
/// enough structure — markers, counts, trailing data — that a cut anywhere
/// is detectable).
void expect_truncations_throw(const std::string& bytes, const Loader& loader) {
  ASSERT_FALSE(bytes.empty());
  const std::size_t stride = bytes.size() > 4096 ? 31 : 1;
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    std::istringstream in(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(loader(in), std::exception) << "prefix of " << len << " bytes parsed";
  }
}

/// Byte-corruption sweep: a flipped byte may or may not be detectable (a
/// flipped double payload is just a different value), but the loader must
/// always either throw or return — bounds violations, overflow, and wild
/// allocations show up under the sanitizer configs.
void expect_corruptions_contained(const std::string& bytes, const Loader& loader) {
  const std::size_t stride = bytes.size() > 4096 ? 13 : 1;
  for (const unsigned char pattern : {0xFFu, 0x01u, 0x80u}) {
    for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ static_cast<char>(pattern));
      std::istringstream in(mutated, std::ios::binary);
      try {
        loader(in);
      } catch (const std::exception&) {
        // rejected — fine; crashing or sanitizer reports are the failures
      }
    }
  }
}

void run_sweeps(const std::string& bytes, const Loader& loader) {
  expect_truncations_throw(bytes, loader);
  expect_corruptions_contained(bytes, loader);
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "reveal_hardening_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- numeric/binary_io primitives ------------------------------------------

TEST(BinaryHardening, ReadVecRejectsImplausibleCounts) {
  std::ostringstream out(std::ios::binary);
  num::io::write_pod<std::uint64_t>(out, std::uint64_t{1} << 60);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW((void)num::io::read_vec<double>(in, 1 << 20), std::runtime_error);
}

TEST(BinaryHardening, ReadStringRejectsOversizedLength) {
  std::ostringstream out(std::ios::binary);
  num::io::write_pod<std::uint64_t>(out, std::uint64_t{1} << 40);
  std::istringstream in(out.str(), std::ios::binary);
  EXPECT_THROW((void)num::io::read_string(in), std::runtime_error);
}

// --- sca::TraceSet (file-based) --------------------------------------------

TEST(BinaryHardening, TraceSetLoadSurvivesCorruptFiles) {
  sca::TraceSet set;
  for (int t = 0; t < 6; ++t) {
    sca::Trace trace;
    trace.label = t;
    trace.samples.resize(32 + 5 * static_cast<std::size_t>(t));
    for (std::size_t i = 0; i < trace.samples.size(); ++i)
      trace.samples[i] = 0.25 * static_cast<double>(i) - t;
    set.add(std::move(trace));
  }
  const std::string path = temp_path("traceset.bin");
  set.save(path);
  const std::string bytes = read_file(path);

  const std::string probe = temp_path("traceset_probe.bin");
  const std::size_t stride = bytes.size() > 4096 ? 31 : 1;
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    write_file(probe, bytes.substr(0, len));
    EXPECT_THROW((void)sca::TraceSet::load(probe), std::runtime_error)
        << "prefix of " << len << " bytes parsed";
  }
  for (const unsigned char pattern : {0xFFu, 0x01u}) {
    for (std::size_t pos = 0; pos < bytes.size(); pos += stride) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ static_cast<char>(pattern));
      write_file(probe, mutated);
      try {
        (void)sca::TraceSet::load(probe);
      } catch (const std::exception&) {
      }
    }
  }
}

TEST(BinaryHardening, TraceSetLoadRejectsOverdeclaredCountWithoutAllocating) {
  sca::TraceSet set;
  sca::Trace trace;
  trace.samples = {1.0, 2.0, 3.0};
  set.add(std::move(trace));
  const std::string path = temp_path("traceset_count.bin");
  set.save(path);
  std::string bytes = read_file(path);
  // Patch the trace-count field (right after the 4-byte magic) to a count
  // no remaining-bytes budget can cover; load must throw, not reserve.
  const std::uint64_t huge = std::uint64_t{1} << 61;
  std::memcpy(bytes.data() + 4, &huge, sizeof(huge));
  write_file(path, bytes);
  EXPECT_THROW((void)sca::TraceSet::load(path), std::runtime_error);
}

// --- seal serialization -----------------------------------------------------

TEST(BinaryHardening, SealLoadersSurviveCorruptStreams) {
  seal::Poly poly(64, 3);
  for (std::size_t j = 0; j < 3; ++j)
    for (std::size_t i = 0; i < 64; ++i) poly.at(i, j) = i * 131 + j;
  run_sweeps(serialize([&](std::ostream& out) { seal::save_poly(poly, out); }),
             [](std::istream& in) { (void)seal::load_poly(in); });
}

TEST(BinaryHardening, SealPolyDimensionProductCannotWrap) {
  // Regression for the n * k > kMaxElements guard: with n = k = 2^32 the
  // product wraps uint64 to 0 and the old check passed, sizing a huge
  // resize. The division-form guard must reject it before any allocation.
  seal::Poly poly(4, 1);
  std::string bytes = serialize([&](std::ostream& out) { seal::save_poly(poly, out); });
  const std::uint64_t wrap = std::uint64_t{1} << 32;
  // Layout: u32 tag, u32 version, u64 coeff_count, u64 coeff_mod_count.
  std::memcpy(bytes.data() + 8, &wrap, sizeof(wrap));
  std::memcpy(bytes.data() + 16, &wrap, sizeof(wrap));
  std::istringstream in(bytes, std::ios::binary);
  EXPECT_THROW((void)seal::load_poly(in), std::runtime_error);
}

// --- numeric / sca / obs serialized state -----------------------------------

TEST(BinaryHardening, RunningCovarianceLoadSurvivesCorruptStreams) {
  num::RunningCovariance cov(5);
  for (int s = 0; s < 9; ++s) {
    std::vector<double> x(5);
    for (std::size_t i = 0; i < 5; ++i) x[i] = 0.1 * s + 1.7 * static_cast<double>(i);
    cov.add(x);
  }
  const std::string bytes = serialize([&](std::ostream& out) { cov.save(out); });
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(num::RunningCovariance::load(in), cov);  // exact round-trip
  }
  run_sweeps(bytes, [](std::istream& in) { (void)num::RunningCovariance::load(in); });
}

TEST(BinaryHardening, TemplateBuilderLoadSurvivesCorruptStreams) {
  sca::TemplateBuilder builder(4);
  for (int label = -2; label <= 2; ++label) {
    for (int s = 0; s < 5; ++s) {
      std::vector<double> obs(4);
      for (std::size_t i = 0; i < 4; ++i)
        obs[i] = label * 0.5 + s * 0.01 + static_cast<double>(i);
      builder.add(label, obs);
    }
  }
  const std::string bytes = serialize([&](std::ostream& out) { builder.save(out); });
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(sca::TemplateBuilder::load(in), builder);  // exact round-trip
  }
  run_sweeps(bytes, [](std::istream& in) { (void)sca::TemplateBuilder::load(in); });
}

TEST(BinaryHardening, RegistryLoadSurvivesCorruptStreams) {
  obs::Registry reg;
  const auto c = reg.counter("capture.count");
  reg.add(c, 41);
  reg.set_max(reg.gauge("queue.depth.max"), 17.5);
  const auto h = reg.histogram("segmentation.quality", 0.0, 1.0, 16);
  for (int i = 0; i < 50; ++i) reg.observe(h, 0.02 * i);
  const std::string bytes = serialize([&](std::ostream& out) { reg.save(out); });
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_TRUE(obs::Registry::load(in).same_metrics(reg));  // exact round-trip
  }
  run_sweeps(bytes, [](std::istream& in) { (void)obs::Registry::load(in); });
}

TEST(BinaryHardening, ConfusionMatrixLoadSurvivesCorruptStreams) {
  sca::ConfusionMatrix confusion;
  for (int t = -3; t <= 3; ++t)
    for (int p = -3; p <= 3; ++p)
      for (int reps = 0; reps <= (t == p ? 6 : 1); ++reps) confusion.add(t, p);
  const std::string bytes = serialize([&](std::ostream& out) { confusion.save(out); });
  {
    std::istringstream in(bytes, std::ios::binary);
    EXPECT_EQ(sca::ConfusionMatrix::load(in), confusion);  // exact round-trip
  }
  run_sweeps(bytes, [](std::istream& in) { (void)sca::ConfusionMatrix::load(in); });
}

TEST(BinaryHardening, CampaignAccumulatorLoadSurvivesCorruptStreams) {
  core::CampaignAccumulator acc;
  acc.next_index = 3;
  acc.hints.resize(3);
  for (std::size_t c = 0; c < 3; ++c) {
    for (std::size_t g = 0; g < 2 + c; ++g) {
      core::HintRecord r;
      r.kind = static_cast<core::HintRecord::Kind>((c + g) % 4);
      r.variance = 0.125 * static_cast<double>(g + 1);
      acc.hints[c].push_back(r);
      acc.worker_tally.add(r);
    }
    acc.capture_consistency.push_back(0.5 + 0.1 * static_cast<double>(c));
  }
  acc.recovered_windows = 180;
  acc.segmentation_attempts = 4;
  acc.worst_status = sca::SegmentationStatus::kRecovered;
  acc.ok_guesses = 150;
  acc.low_confidence_guesses = 20;
  acc.abstained_guesses = 10;
  acc.registry.add(acc.registry.counter("capture.count"), 3);
  acc.confusion.add(1, 1);
  acc.confusion.add(1, -1);

  const std::string bytes = serialize([&](std::ostream& out) { acc.save(out); });
  {
    std::istringstream in(bytes, std::ios::binary);
    const core::CampaignAccumulator loaded = core::CampaignAccumulator::load(in);
    EXPECT_EQ(loaded.next_index, acc.next_index);
    EXPECT_EQ(loaded.hints, acc.hints);
    EXPECT_EQ(loaded.capture_consistency, acc.capture_consistency);
    EXPECT_EQ(loaded.worker_tally, acc.worker_tally);
    EXPECT_EQ(loaded.worst_status, acc.worst_status);
    EXPECT_TRUE(loaded.registry.same_metrics(acc.registry));
    EXPECT_EQ(loaded.confusion, acc.confusion);
  }
  run_sweeps(bytes, [](std::istream& in) { (void)core::CampaignAccumulator::load(in); });
}

// --- corpus reader (file-based) ---------------------------------------------

TEST(BinaryHardening, CorpusReaderSurvivesCorruptFiles) {
  const std::string path = temp_path("corpus.rvlc");
  {
    corpus::WriterOptions options;
    options.traces_per_chunk = 4;
    corpus::CorpusWriter writer = corpus::CorpusWriter::create(path, options);
    std::vector<double> samples;
    for (int i = 0; i < 10; ++i) {
      samples.assign(static_cast<std::size_t>(12 + i), 1.5 * i);
      writer.add(i, samples);
    }
    writer.close();
  }
  const std::string bytes = read_file(path);
  const std::string probe = temp_path("corpus_probe.rvlc");

  // Truncations: the commit pointer covers the whole file, so every strict
  // prefix is a torn file and must be rejected.
  const std::size_t stride = bytes.size() > 4096 ? 31 : 1;
  for (std::size_t len = 0; len < bytes.size(); len += stride) {
    write_file(probe, bytes.substr(0, len));
    EXPECT_THROW(corpus::CorpusReader reader(probe), std::runtime_error)
        << "prefix of " << len << " bytes opened";
  }

  // Single-byte corruption: the reader either rejects the file or serves a
  // committed prefix of the original traces, bit-exact. (A flip in the
  // newest commit slot legitimately falls back to the previous commit; a
  // flip in unchecked reserved/padding bytes changes nothing.)
  for (const unsigned char pattern : {0xFFu, 0x01u, 0x80u}) {
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
      std::string mutated = bytes;
      mutated[pos] = static_cast<char>(mutated[pos] ^ static_cast<char>(pattern));
      write_file(probe, mutated);
      try {
        corpus::CorpusReader reader(probe);
        ASSERT_LE(reader.size(), 10u) << "pos " << pos;
        for (std::size_t i = 0; i < reader.size(); ++i) {
          const corpus::TraceView view = reader[i];
          ASSERT_EQ(view.label, static_cast<std::int32_t>(i)) << "pos " << pos;
          ASSERT_EQ(view.samples.size(), static_cast<std::size_t>(12 + i))
              << "pos " << pos;
          for (const double v : view.samples)
            ASSERT_EQ(v, 1.5 * static_cast<double>(i)) << "pos " << pos;
        }
      } catch (const std::exception&) {
        // rejected — fine
      }
    }
  }
}

}  // namespace
