# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_modulus[1]_include.cmake")
include("/root/repo/build/tests/test_biguint[1]_include.cmake")
include("/root/repo/build/tests/test_ntt[1]_include.cmake")
include("/root/repo/build/tests/test_poly[1]_include.cmake")
include("/root/repo/build/tests/test_sampler[1]_include.cmake")
include("/root/repo/build/tests/test_bfv[1]_include.cmake")
include("/root/repo/build/tests/test_riscv[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_sca[1]_include.cmake")
include("/root/repo/build/tests/test_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_lwe[1]_include.cmake")
include("/root/repo/build/tests/test_victim[1]_include.cmake")
include("/root/repo/build/tests/test_attack_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tvla[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_recovery[1]_include.cmake")
include("/root/repo/build/tests/test_crt[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_alignment[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
