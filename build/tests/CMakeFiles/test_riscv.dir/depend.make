# Empty dependencies file for test_riscv.
# This may be replaced when dependencies are built.
