file(REMOVE_RECURSE
  "CMakeFiles/test_attack_integration.dir/test_attack_integration.cpp.o"
  "CMakeFiles/test_attack_integration.dir/test_attack_integration.cpp.o.d"
  "test_attack_integration"
  "test_attack_integration.pdb"
  "test_attack_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attack_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
