# Empty dependencies file for test_attack_integration.
# This may be replaced when dependencies are built.
