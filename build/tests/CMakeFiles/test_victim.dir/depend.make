# Empty dependencies file for test_victim.
# This may be replaced when dependencies are built.
