file(REMOVE_RECURSE
  "CMakeFiles/test_tvla.dir/test_tvla.cpp.o"
  "CMakeFiles/test_tvla.dir/test_tvla.cpp.o.d"
  "test_tvla"
  "test_tvla.pdb"
  "test_tvla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tvla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
