# Empty compiler generated dependencies file for test_tvla.
# This may be replaced when dependencies are built.
