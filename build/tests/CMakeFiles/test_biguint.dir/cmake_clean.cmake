file(REMOVE_RECURSE
  "CMakeFiles/test_biguint.dir/test_biguint.cpp.o"
  "CMakeFiles/test_biguint.dir/test_biguint.cpp.o.d"
  "test_biguint"
  "test_biguint.pdb"
  "test_biguint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biguint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
