file(REMOVE_RECURSE
  "CMakeFiles/test_modulus.dir/test_modulus.cpp.o"
  "CMakeFiles/test_modulus.dir/test_modulus.cpp.o.d"
  "test_modulus"
  "test_modulus.pdb"
  "test_modulus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modulus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
