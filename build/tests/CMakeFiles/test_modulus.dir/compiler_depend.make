# Empty compiler generated dependencies file for test_modulus.
# This may be replaced when dependencies are built.
