
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_numeric.cpp" "tests/CMakeFiles/test_numeric.dir/test_numeric.cpp.o" "gcc" "tests/CMakeFiles/test_numeric.dir/test_numeric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reveal_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lwe/CMakeFiles/reveal_lwe.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/reveal_lattice.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/reveal_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/reveal_power.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/reveal_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/seal/CMakeFiles/reveal_seal.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
