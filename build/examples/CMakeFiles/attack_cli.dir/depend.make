# Empty dependencies file for attack_cli.
# This may be replaced when dependencies are built.
