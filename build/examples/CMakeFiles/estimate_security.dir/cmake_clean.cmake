file(REMOVE_RECURSE
  "CMakeFiles/estimate_security.dir/estimate_security.cpp.o"
  "CMakeFiles/estimate_security.dir/estimate_security.cpp.o.d"
  "estimate_security"
  "estimate_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
