# Empty compiler generated dependencies file for estimate_security.
# This may be replaced when dependencies are built.
