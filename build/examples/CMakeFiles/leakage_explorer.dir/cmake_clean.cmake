file(REMOVE_RECURSE
  "CMakeFiles/leakage_explorer.dir/leakage_explorer.cpp.o"
  "CMakeFiles/leakage_explorer.dir/leakage_explorer.cpp.o.d"
  "leakage_explorer"
  "leakage_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
