# Empty dependencies file for leakage_explorer.
# This may be replaced when dependencies are built.
