file(REMOVE_RECURSE
  "CMakeFiles/full_attack_demo.dir/full_attack_demo.cpp.o"
  "CMakeFiles/full_attack_demo.dir/full_attack_demo.cpp.o.d"
  "full_attack_demo"
  "full_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
