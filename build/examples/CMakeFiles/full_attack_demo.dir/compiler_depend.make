# Empty compiler generated dependencies file for full_attack_demo.
# This may be replaced when dependencies are built.
