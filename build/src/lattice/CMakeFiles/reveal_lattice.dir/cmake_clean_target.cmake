file(REMOVE_RECURSE
  "libreveal_lattice.a"
)
