# Empty dependencies file for reveal_lattice.
# This may be replaced when dependencies are built.
