file(REMOVE_RECURSE
  "CMakeFiles/reveal_lattice.dir/lattice.cpp.o"
  "CMakeFiles/reveal_lattice.dir/lattice.cpp.o.d"
  "libreveal_lattice.a"
  "libreveal_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
