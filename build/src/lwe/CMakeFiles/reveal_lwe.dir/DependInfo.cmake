
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lwe/dbdd.cpp" "src/lwe/CMakeFiles/reveal_lwe.dir/dbdd.cpp.o" "gcc" "src/lwe/CMakeFiles/reveal_lwe.dir/dbdd.cpp.o.d"
  "/root/repo/src/lwe/dbdd_matrix.cpp" "src/lwe/CMakeFiles/reveal_lwe.dir/dbdd_matrix.cpp.o" "gcc" "src/lwe/CMakeFiles/reveal_lwe.dir/dbdd_matrix.cpp.o.d"
  "/root/repo/src/lwe/lwe.cpp" "src/lwe/CMakeFiles/reveal_lwe.dir/lwe.cpp.o" "gcc" "src/lwe/CMakeFiles/reveal_lwe.dir/lwe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/seal/CMakeFiles/reveal_seal.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/reveal_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
