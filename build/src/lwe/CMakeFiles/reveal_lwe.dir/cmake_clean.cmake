file(REMOVE_RECURSE
  "CMakeFiles/reveal_lwe.dir/dbdd.cpp.o"
  "CMakeFiles/reveal_lwe.dir/dbdd.cpp.o.d"
  "CMakeFiles/reveal_lwe.dir/dbdd_matrix.cpp.o"
  "CMakeFiles/reveal_lwe.dir/dbdd_matrix.cpp.o.d"
  "CMakeFiles/reveal_lwe.dir/lwe.cpp.o"
  "CMakeFiles/reveal_lwe.dir/lwe.cpp.o.d"
  "libreveal_lwe.a"
  "libreveal_lwe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_lwe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
