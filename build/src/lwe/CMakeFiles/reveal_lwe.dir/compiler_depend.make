# Empty compiler generated dependencies file for reveal_lwe.
# This may be replaced when dependencies are built.
