file(REMOVE_RECURSE
  "libreveal_lwe.a"
)
