# Empty dependencies file for reveal_numeric.
# This may be replaced when dependencies are built.
