file(REMOVE_RECURSE
  "libreveal_numeric.a"
)
