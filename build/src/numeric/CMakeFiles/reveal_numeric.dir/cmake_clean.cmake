file(REMOVE_RECURSE
  "CMakeFiles/reveal_numeric.dir/distributions.cpp.o"
  "CMakeFiles/reveal_numeric.dir/distributions.cpp.o.d"
  "CMakeFiles/reveal_numeric.dir/matrix.cpp.o"
  "CMakeFiles/reveal_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/reveal_numeric.dir/rng.cpp.o"
  "CMakeFiles/reveal_numeric.dir/rng.cpp.o.d"
  "CMakeFiles/reveal_numeric.dir/stats.cpp.o"
  "CMakeFiles/reveal_numeric.dir/stats.cpp.o.d"
  "libreveal_numeric.a"
  "libreveal_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
