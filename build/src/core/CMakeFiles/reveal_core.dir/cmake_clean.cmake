file(REMOVE_RECURSE
  "CMakeFiles/reveal_core.dir/acquisition.cpp.o"
  "CMakeFiles/reveal_core.dir/acquisition.cpp.o.d"
  "CMakeFiles/reveal_core.dir/attack.cpp.o"
  "CMakeFiles/reveal_core.dir/attack.cpp.o.d"
  "CMakeFiles/reveal_core.dir/hints.cpp.o"
  "CMakeFiles/reveal_core.dir/hints.cpp.o.d"
  "CMakeFiles/reveal_core.dir/message_recovery.cpp.o"
  "CMakeFiles/reveal_core.dir/message_recovery.cpp.o.d"
  "CMakeFiles/reveal_core.dir/residual_search.cpp.o"
  "CMakeFiles/reveal_core.dir/residual_search.cpp.o.d"
  "CMakeFiles/reveal_core.dir/victim.cpp.o"
  "CMakeFiles/reveal_core.dir/victim.cpp.o.d"
  "CMakeFiles/reveal_core.dir/victim_cdt.cpp.o"
  "CMakeFiles/reveal_core.dir/victim_cdt.cpp.o.d"
  "libreveal_core.a"
  "libreveal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
