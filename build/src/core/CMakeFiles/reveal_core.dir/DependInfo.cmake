
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquisition.cpp" "src/core/CMakeFiles/reveal_core.dir/acquisition.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/acquisition.cpp.o.d"
  "/root/repo/src/core/attack.cpp" "src/core/CMakeFiles/reveal_core.dir/attack.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/attack.cpp.o.d"
  "/root/repo/src/core/hints.cpp" "src/core/CMakeFiles/reveal_core.dir/hints.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/hints.cpp.o.d"
  "/root/repo/src/core/message_recovery.cpp" "src/core/CMakeFiles/reveal_core.dir/message_recovery.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/message_recovery.cpp.o.d"
  "/root/repo/src/core/residual_search.cpp" "src/core/CMakeFiles/reveal_core.dir/residual_search.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/residual_search.cpp.o.d"
  "/root/repo/src/core/victim.cpp" "src/core/CMakeFiles/reveal_core.dir/victim.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/victim.cpp.o.d"
  "/root/repo/src/core/victim_cdt.cpp" "src/core/CMakeFiles/reveal_core.dir/victim_cdt.cpp.o" "gcc" "src/core/CMakeFiles/reveal_core.dir/victim_cdt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/seal/CMakeFiles/reveal_seal.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/reveal_riscv.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/reveal_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sca/CMakeFiles/reveal_sca.dir/DependInfo.cmake"
  "/root/repo/build/src/lwe/CMakeFiles/reveal_lwe.dir/DependInfo.cmake"
  "/root/repo/build/src/lattice/CMakeFiles/reveal_lattice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
