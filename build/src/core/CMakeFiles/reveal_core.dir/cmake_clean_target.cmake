file(REMOVE_RECURSE
  "libreveal_core.a"
)
