# Empty dependencies file for reveal_core.
# This may be replaced when dependencies are built.
