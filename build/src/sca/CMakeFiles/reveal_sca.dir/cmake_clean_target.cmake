file(REMOVE_RECURSE
  "libreveal_sca.a"
)
