file(REMOVE_RECURSE
  "CMakeFiles/reveal_sca.dir/alignment.cpp.o"
  "CMakeFiles/reveal_sca.dir/alignment.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/classifier.cpp.o"
  "CMakeFiles/reveal_sca.dir/classifier.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/clustering.cpp.o"
  "CMakeFiles/reveal_sca.dir/clustering.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/metrics.cpp.o"
  "CMakeFiles/reveal_sca.dir/metrics.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/poi.cpp.o"
  "CMakeFiles/reveal_sca.dir/poi.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/report.cpp.o"
  "CMakeFiles/reveal_sca.dir/report.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/segmentation.cpp.o"
  "CMakeFiles/reveal_sca.dir/segmentation.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/template_attack.cpp.o"
  "CMakeFiles/reveal_sca.dir/template_attack.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/trace.cpp.o"
  "CMakeFiles/reveal_sca.dir/trace.cpp.o.d"
  "CMakeFiles/reveal_sca.dir/tvla.cpp.o"
  "CMakeFiles/reveal_sca.dir/tvla.cpp.o.d"
  "libreveal_sca.a"
  "libreveal_sca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_sca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
