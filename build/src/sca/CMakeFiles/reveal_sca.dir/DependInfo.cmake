
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sca/alignment.cpp" "src/sca/CMakeFiles/reveal_sca.dir/alignment.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/alignment.cpp.o.d"
  "/root/repo/src/sca/classifier.cpp" "src/sca/CMakeFiles/reveal_sca.dir/classifier.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/classifier.cpp.o.d"
  "/root/repo/src/sca/clustering.cpp" "src/sca/CMakeFiles/reveal_sca.dir/clustering.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/clustering.cpp.o.d"
  "/root/repo/src/sca/metrics.cpp" "src/sca/CMakeFiles/reveal_sca.dir/metrics.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/metrics.cpp.o.d"
  "/root/repo/src/sca/poi.cpp" "src/sca/CMakeFiles/reveal_sca.dir/poi.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/poi.cpp.o.d"
  "/root/repo/src/sca/report.cpp" "src/sca/CMakeFiles/reveal_sca.dir/report.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/report.cpp.o.d"
  "/root/repo/src/sca/segmentation.cpp" "src/sca/CMakeFiles/reveal_sca.dir/segmentation.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/segmentation.cpp.o.d"
  "/root/repo/src/sca/template_attack.cpp" "src/sca/CMakeFiles/reveal_sca.dir/template_attack.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/template_attack.cpp.o.d"
  "/root/repo/src/sca/trace.cpp" "src/sca/CMakeFiles/reveal_sca.dir/trace.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/trace.cpp.o.d"
  "/root/repo/src/sca/tvla.cpp" "src/sca/CMakeFiles/reveal_sca.dir/tvla.cpp.o" "gcc" "src/sca/CMakeFiles/reveal_sca.dir/tvla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
