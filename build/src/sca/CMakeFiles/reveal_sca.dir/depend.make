# Empty dependencies file for reveal_sca.
# This may be replaced when dependencies are built.
