file(REMOVE_RECURSE
  "libreveal_riscv.a"
)
