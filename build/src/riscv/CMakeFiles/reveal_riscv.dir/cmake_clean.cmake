file(REMOVE_RECURSE
  "CMakeFiles/reveal_riscv.dir/assembler.cpp.o"
  "CMakeFiles/reveal_riscv.dir/assembler.cpp.o.d"
  "CMakeFiles/reveal_riscv.dir/isa.cpp.o"
  "CMakeFiles/reveal_riscv.dir/isa.cpp.o.d"
  "CMakeFiles/reveal_riscv.dir/machine.cpp.o"
  "CMakeFiles/reveal_riscv.dir/machine.cpp.o.d"
  "libreveal_riscv.a"
  "libreveal_riscv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_riscv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
