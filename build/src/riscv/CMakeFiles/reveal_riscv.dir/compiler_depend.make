# Empty compiler generated dependencies file for reveal_riscv.
# This may be replaced when dependencies are built.
