
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/riscv/assembler.cpp" "src/riscv/CMakeFiles/reveal_riscv.dir/assembler.cpp.o" "gcc" "src/riscv/CMakeFiles/reveal_riscv.dir/assembler.cpp.o.d"
  "/root/repo/src/riscv/isa.cpp" "src/riscv/CMakeFiles/reveal_riscv.dir/isa.cpp.o" "gcc" "src/riscv/CMakeFiles/reveal_riscv.dir/isa.cpp.o.d"
  "/root/repo/src/riscv/machine.cpp" "src/riscv/CMakeFiles/reveal_riscv.dir/machine.cpp.o" "gcc" "src/riscv/CMakeFiles/reveal_riscv.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
