# Empty compiler generated dependencies file for reveal_power.
# This may be replaced when dependencies are built.
