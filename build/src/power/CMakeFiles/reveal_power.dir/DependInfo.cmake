
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/leakage_model.cpp" "src/power/CMakeFiles/reveal_power.dir/leakage_model.cpp.o" "gcc" "src/power/CMakeFiles/reveal_power.dir/leakage_model.cpp.o.d"
  "/root/repo/src/power/scope.cpp" "src/power/CMakeFiles/reveal_power.dir/scope.cpp.o" "gcc" "src/power/CMakeFiles/reveal_power.dir/scope.cpp.o.d"
  "/root/repo/src/power/trace_recorder.cpp" "src/power/CMakeFiles/reveal_power.dir/trace_recorder.cpp.o" "gcc" "src/power/CMakeFiles/reveal_power.dir/trace_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/riscv/CMakeFiles/reveal_riscv.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
