file(REMOVE_RECURSE
  "CMakeFiles/reveal_power.dir/leakage_model.cpp.o"
  "CMakeFiles/reveal_power.dir/leakage_model.cpp.o.d"
  "CMakeFiles/reveal_power.dir/scope.cpp.o"
  "CMakeFiles/reveal_power.dir/scope.cpp.o.d"
  "CMakeFiles/reveal_power.dir/trace_recorder.cpp.o"
  "CMakeFiles/reveal_power.dir/trace_recorder.cpp.o.d"
  "libreveal_power.a"
  "libreveal_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reveal_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
