file(REMOVE_RECURSE
  "libreveal_power.a"
)
