file(REMOVE_RECURSE
  "libreveal_seal.a"
)
