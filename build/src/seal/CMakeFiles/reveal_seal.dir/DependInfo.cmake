
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seal/biguint.cpp" "src/seal/CMakeFiles/reveal_seal.dir/biguint.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/biguint.cpp.o.d"
  "/root/repo/src/seal/crt.cpp" "src/seal/CMakeFiles/reveal_seal.dir/crt.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/crt.cpp.o.d"
  "/root/repo/src/seal/decryptor.cpp" "src/seal/CMakeFiles/reveal_seal.dir/decryptor.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/decryptor.cpp.o.d"
  "/root/repo/src/seal/dgauss.cpp" "src/seal/CMakeFiles/reveal_seal.dir/dgauss.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/dgauss.cpp.o.d"
  "/root/repo/src/seal/encoder.cpp" "src/seal/CMakeFiles/reveal_seal.dir/encoder.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/encoder.cpp.o.d"
  "/root/repo/src/seal/encryption_params.cpp" "src/seal/CMakeFiles/reveal_seal.dir/encryption_params.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/encryption_params.cpp.o.d"
  "/root/repo/src/seal/encryptor.cpp" "src/seal/CMakeFiles/reveal_seal.dir/encryptor.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/encryptor.cpp.o.d"
  "/root/repo/src/seal/evaluator.cpp" "src/seal/CMakeFiles/reveal_seal.dir/evaluator.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/evaluator.cpp.o.d"
  "/root/repo/src/seal/keys.cpp" "src/seal/CMakeFiles/reveal_seal.dir/keys.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/keys.cpp.o.d"
  "/root/repo/src/seal/modarith.cpp" "src/seal/CMakeFiles/reveal_seal.dir/modarith.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/modarith.cpp.o.d"
  "/root/repo/src/seal/modulus.cpp" "src/seal/CMakeFiles/reveal_seal.dir/modulus.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/modulus.cpp.o.d"
  "/root/repo/src/seal/ntt.cpp" "src/seal/CMakeFiles/reveal_seal.dir/ntt.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/ntt.cpp.o.d"
  "/root/repo/src/seal/ntt_fast.cpp" "src/seal/CMakeFiles/reveal_seal.dir/ntt_fast.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/ntt_fast.cpp.o.d"
  "/root/repo/src/seal/poly.cpp" "src/seal/CMakeFiles/reveal_seal.dir/poly.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/poly.cpp.o.d"
  "/root/repo/src/seal/random.cpp" "src/seal/CMakeFiles/reveal_seal.dir/random.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/random.cpp.o.d"
  "/root/repo/src/seal/sampler.cpp" "src/seal/CMakeFiles/reveal_seal.dir/sampler.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/sampler.cpp.o.d"
  "/root/repo/src/seal/serialization.cpp" "src/seal/CMakeFiles/reveal_seal.dir/serialization.cpp.o" "gcc" "src/seal/CMakeFiles/reveal_seal.dir/serialization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/reveal_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
