# Empty dependencies file for reveal_seal.
# This may be replaced when dependencies are built.
