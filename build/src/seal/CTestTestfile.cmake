# CMake generated Testfile for 
# Source directory: /root/repo/src/seal
# Build directory: /root/repo/build/src/seal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
