file(REMOVE_RECURSE
  "CMakeFiles/bench_toy_recovery.dir/bench_toy_recovery.cpp.o"
  "CMakeFiles/bench_toy_recovery.dir/bench_toy_recovery.cpp.o.d"
  "bench_toy_recovery"
  "bench_toy_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_toy_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
