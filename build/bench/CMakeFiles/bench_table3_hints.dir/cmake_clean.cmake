file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_hints.dir/bench_table3_hints.cpp.o"
  "CMakeFiles/bench_table3_hints.dir/bench_table3_hints.cpp.o.d"
  "bench_table3_hints"
  "bench_table3_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
