# Empty dependencies file for bench_cross_device.
# This may be replaced when dependencies are built.
