# Empty dependencies file for bench_table4_branch_only.
# This may be replaced when dependencies are built.
