file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_branch_only.dir/bench_table4_branch_only.cpp.o"
  "CMakeFiles/bench_table4_branch_only.dir/bench_table4_branch_only.cpp.o.d"
  "bench_table4_branch_only"
  "bench_table4_branch_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_branch_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
