file(REMOVE_RECURSE
  "CMakeFiles/bench_multitrace.dir/bench_multitrace.cpp.o"
  "CMakeFiles/bench_multitrace.dir/bench_multitrace.cpp.o.d"
  "bench_multitrace"
  "bench_multitrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
