# Empty compiler generated dependencies file for bench_multitrace.
# This may be replaced when dependencies are built.
