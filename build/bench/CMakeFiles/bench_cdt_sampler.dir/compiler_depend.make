# Empty compiler generated dependencies file for bench_cdt_sampler.
# This may be replaced when dependencies are built.
