file(REMOVE_RECURSE
  "CMakeFiles/bench_cdt_sampler.dir/bench_cdt_sampler.cpp.o"
  "CMakeFiles/bench_cdt_sampler.dir/bench_cdt_sampler.cpp.o.d"
  "bench_cdt_sampler"
  "bench_cdt_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cdt_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
