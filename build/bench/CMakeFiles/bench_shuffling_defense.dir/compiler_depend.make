# Empty compiler generated dependencies file for bench_shuffling_defense.
# This may be replaced when dependencies are built.
