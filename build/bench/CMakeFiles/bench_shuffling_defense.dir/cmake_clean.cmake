file(REMOVE_RECURSE
  "CMakeFiles/bench_shuffling_defense.dir/bench_shuffling_defense.cpp.o"
  "CMakeFiles/bench_shuffling_defense.dir/bench_shuffling_defense.cpp.o.d"
  "bench_shuffling_defense"
  "bench_shuffling_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shuffling_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
