file(REMOVE_RECURSE
  "CMakeFiles/bench_masking_defense.dir/bench_masking_defense.cpp.o"
  "CMakeFiles/bench_masking_defense.dir/bench_masking_defense.cpp.o.d"
  "bench_masking_defense"
  "bench_masking_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_masking_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
