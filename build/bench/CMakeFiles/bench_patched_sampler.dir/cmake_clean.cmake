file(REMOVE_RECURSE
  "CMakeFiles/bench_patched_sampler.dir/bench_patched_sampler.cpp.o"
  "CMakeFiles/bench_patched_sampler.dir/bench_patched_sampler.cpp.o.d"
  "bench_patched_sampler"
  "bench_patched_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patched_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
