# Empty dependencies file for bench_patched_sampler.
# This may be replaced when dependencies are built.
