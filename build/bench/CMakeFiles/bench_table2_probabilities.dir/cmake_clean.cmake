file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_probabilities.dir/bench_table2_probabilities.cpp.o"
  "CMakeFiles/bench_table2_probabilities.dir/bench_table2_probabilities.cpp.o.d"
  "bench_table2_probabilities"
  "bench_table2_probabilities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_probabilities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
