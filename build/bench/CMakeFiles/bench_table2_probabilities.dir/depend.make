# Empty dependencies file for bench_table2_probabilities.
# This may be replaced when dependencies are built.
